#!/usr/bin/env python3
"""Simulator-specific lint rules for the LumiBench model.

Off-the-shelf linters do not know the invariants a cycle-level
simulator lives by, so this script enforces the project-specific
ones:

  nondeterminism     No wall-clock or libc/std randomness inside the
                     timing model (src/gpu, src/rt, src/bvh). Cycle
                     counts must be bit-identical run to run; any
                     entropy has to come from a seeded lumi::Rng.
  unordered-iter     No range-for iteration over unordered containers
                     in code that emits reports, traces, or stats.
                     Hash-order iteration makes output byte-unstable
                     across libstdc++ versions and ASLR.
  stat-coverage      Every uint64_t counter field declared in the
                     stats structs (GpuStats, CacheStats, DramStats,
                     RequesterStats) must be registered by address in
                     src/gpu/stat_bindings.cc, so run reports can
                     never silently drop a counter.
  no-bare-assert     src/gpu and src/check use LUMI_CHECK instead of
                     assert(): checks must honor count-mode, feed the
                     violation counters, and compile out with
                     -DLUMI_CHECKS=OFF.
  campaign-sweep     Bench binaries must not hand-roll workload loops
                     with direct runWorkload()/runCompute() calls;
                     sweeps go through the campaign engine
                     (bench_util.hh runAll/runJobs) so every bench
                     gets parallelism, retries, budgets and the
                     result cache for free.
  cache-access       Outside the MemSystem implementation, no src/
                     code may call Cache::probe/writeProbe/peek/fill
                     directly. Every access must flow through the
                     issueRead/issueWrite ports so MSHR accounting,
                     port arbitration and the request stats stay
                     conserved (unit tests and microbenches of Cache
                     itself live in tests/ and bench/, which the
                     rule does not scan).
  gpu-chrono         src/gpu must not touch wall-clock facilities
                     (std::chrono, <chrono>, clock_gettime,
                     gettimeofday) except through the sanctioned
                     self-profiling helper src/gpu/host_profile.cc.
                     Host timing anywhere else in the model invites
                     observer effects and nondeterministic behavior
                     that the interval/timeline samplers are designed
                     to avoid.

Exit status is the number of rule classes that found violations
(0 = clean). A line may opt out with a trailing
`// lint:allow(<rule>)` comment.

Usage: tools/lint.py [--root DIR] [--list-rules]
"""

import argparse
import os
import re
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_ROOT = os.path.dirname(HERE)

# Directories making up the deterministic timing model.
MODEL_DIRS = ("src/gpu", "src/rt", "src/bvh", "src/check")
# Code that serializes output: reports, traces, stats, metrics.
EMIT_DIRS = ("src/trace", "src/lumibench", "src/metrics",
             "src/analysis", "src/campaign")
EMIT_FILES = ("src/gpu/stat_bindings.cc",)

NONDET_PATTERNS = [
    (re.compile(r"\b(?:std::)?s?rand(?:_r)?\s*\("), "rand()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::(?:mt19937|minstd_rand|default_random_engine)"
                r"(?:_64)?\b"),
     "unseeded-by-convention std random engine"),
    (re.compile(r"(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0|&)"),
     "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\bstd::chrono::(?:system|steady|high_resolution)"
                r"_clock\b"),
     "std::chrono clock"),
]

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")

STAT_STRUCTS = [
    # (header, struct name, registration function in stat_bindings.cc)
    ("src/gpu/stats.hh", "GpuStats", "registerGpuStats"),
    ("src/gpu/cache.hh", "CacheStats", "registerCacheStats"),
    ("src/gpu/dram.hh", "DramStats", "registerDramStats"),
    ("src/gpu/mem_system.hh", "RequesterStats",
     "registerRequesterStats"),
    ("src/gpu/mem_request.hh", "MemSystemStats",
     "registerMemSystemStats"),
]

FIELD_RE = re.compile(
    r"^\s*uint64_t\s+(\w+)\s*(?:\[[^\]]*\])?\s*=\s*(?:0|\{\})\s*;")

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}]*?>>?\s+(\w+)\s*[;={]")


def strip_comments(text):
    """Blank out // and /* */ comments, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == '"' and (i == 0 or text[i - 1] != "\\"):
            # Skip string literal so banned tokens in messages don't
            # trip the patterns.
            out.append(c)
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    out.append(" ")
                    i += 1
                out.append(" " if text[i] != "\n" else "\n")
                i += 1
            if i < n:
                out.append('"')
                i += 1
        elif text.startswith("//", i):
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif text.startswith("/*", i):
            while i < n and not text.startswith("*/", i):
                out.append(" " if text[i] != "\n" else "\n")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def source_files(root, subdirs, extra_files=()):
    found = []
    for sub in subdirs:
        base = os.path.join(root, sub)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith((".cc", ".hh")):
                    found.append(os.path.join(dirpath, name))
    for rel in extra_files:
        path = os.path.join(root, rel)
        if os.path.exists(path):
            found.append(path)
    return sorted(found)


def allowed(raw_line, rule):
    match = ALLOW_RE.search(raw_line)
    return match is not None and match.group(1) == rule


def check_nondeterminism(root, report):
    ok = True
    for path in source_files(root, MODEL_DIRS):
        raw_lines = open(path).read().splitlines()
        clean = strip_comments("\n".join(raw_lines)).splitlines()
        for lineno, line in enumerate(clean, 1):
            for pattern, what in NONDET_PATTERNS:
                if pattern.search(line):
                    if allowed(raw_lines[lineno - 1],
                               "nondeterminism"):
                        continue
                    report(path, lineno, "nondeterminism",
                           "%s in the timing model; cycle counts "
                           "must be deterministic (use a seeded "
                           "lumi::Rng)" % what)
                    ok = False
    return ok


def check_unordered_iteration(root, report):
    # Pass 1: collect every identifier declared anywhere in src/ with
    # an unordered container type.
    names = set()
    for path in source_files(root, ("src",)):
        for match in UNORDERED_DECL_RE.finditer(
                strip_comments(open(path).read())):
            names.add(match.group(1))
    # Pass 2: flag range-for over those identifiers (or over an
    # expression that is textually unordered) in emitting code.
    range_for = re.compile(r"for\s*\([^;()]*?:\s*([^)]*)\)")
    ok = True
    for path in source_files(root, EMIT_DIRS, EMIT_FILES):
        raw_lines = open(path).read().splitlines()
        clean = strip_comments("\n".join(raw_lines)).splitlines()
        for lineno, line in enumerate(clean, 1):
            match = range_for.search(line)
            if not match:
                continue
            expr = match.group(1)
            ident = re.findall(r"(\w+)\s*(?:\(\s*\))?\s*$", expr)
            hash_ordered = "unordered" in expr or (
                ident and ident[0] in names)
            if hash_ordered and not allowed(raw_lines[lineno - 1],
                                            "unordered-iter"):
                report(path, lineno, "unordered-iter",
                       "iterating '%s' (hash order) while emitting "
                       "output; order must be deterministic" %
                       expr.strip())
                ok = False
    return ok


def struct_fields(header_path, struct_name):
    """uint64_t counter fields of @p struct_name (zero-initialized)."""
    text = open(header_path).read()
    match = re.search(r"struct\s+%s\b" % struct_name, text)
    if not match:
        return None
    depth = 0
    fields = []
    body_start = text.index("{", match.end())
    i = body_start
    while i < len(text):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                break
        i += 1
    body = text[body_start:i]
    # Only top-level members: strip nested function bodies so locals
    # like `uint64_t denom = ...` are not mistaken for counters.
    top = []
    depth = 0
    for ch in body[1:]:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        elif depth == 0:
            top.append(ch)
    for line in "".join(top).splitlines():
        m = FIELD_RE.match(line)
        if m:
            fields.append(m.group(1))
    return fields


def check_stat_coverage(root, report):
    bindings_path = os.path.join(root, "src/gpu/stat_bindings.cc")
    bindings = strip_comments(open(bindings_path).read())
    registered = set(re.findall(r"&s->(\w+)", bindings))
    ok = True
    for rel, struct, func in STAT_STRUCTS:
        header = os.path.join(root, rel)
        fields = struct_fields(header, struct)
        if fields is None:
            report(header, 1, "stat-coverage",
                   "struct %s not found" % struct)
            ok = False
            continue
        for field in fields:
            if field not in registered:
                report(header, 1, "stat-coverage",
                       "%s::%s is never registered in %s() "
                       "(src/gpu/stat_bindings.cc); run reports "
                       "would silently drop it" %
                       (struct, field, func))
                ok = False
    return ok


def check_no_bare_assert(root, report):
    ok = True
    pattern = re.compile(r"(?<![\w.])assert\s*\(")
    for path in source_files(root, ("src/gpu", "src/check")):
        raw_lines = open(path).read().splitlines()
        clean = strip_comments("\n".join(raw_lines)).splitlines()
        for lineno, line in enumerate(clean, 1):
            if pattern.search(line) and "static_assert" not in line:
                if allowed(raw_lines[lineno - 1], "no-bare-assert"):
                    continue
                report(path, lineno, "no-bare-assert",
                       "use LUMI_CHECK instead of assert() in the "
                       "model: it honors count mode, feeds the "
                       "violation stats, and compiles out with "
                       "-DLUMI_CHECKS=OFF")
                ok = False
    return ok


def check_campaign_sweep(root, report):
    """Bench binaries must sweep via the campaign engine."""
    ok = True
    pattern = re.compile(r"\brun(?:Workload|Compute)\s*\(")
    bench_dir = os.path.join(root, "bench")
    for name in sorted(os.listdir(bench_dir)):
        if not name.endswith(".cc"):
            continue
        path = os.path.join(bench_dir, name)
        raw_lines = open(path).read().splitlines()
        clean = strip_comments("\n".join(raw_lines)).splitlines()
        for lineno, line in enumerate(clean, 1):
            if pattern.search(line):
                if allowed(raw_lines[lineno - 1], "campaign-sweep"):
                    continue
                report(path, lineno, "campaign-sweep",
                       "direct runWorkload()/runCompute() in a bench "
                       "binary; route the sweep through bench_util "
                       "runAll()/runJobs() (campaign engine) so it "
                       "gets LUMI_JOBS parallelism, retries and the "
                       "result cache")
                ok = False
    return ok


def check_cache_access(root, report):
    """src/ code accesses caches only through the MemSystem ports."""
    ok = True
    # Method calls only (`.` or `->` receiver): free fill()/probe()
    # functions and std::fill never match.
    pattern = re.compile(
        r"(?:\.|->)\s*(probe|writeProbe|peek|fill)\s*\(")
    allowed_files = ("src/gpu/mem_system.cc", "src/gpu/cache.cc",
                     "src/gpu/cache.hh")
    for path in source_files(root, ("src",)):
        rel = os.path.relpath(path, root)
        if rel in allowed_files:
            continue
        raw_lines = open(path).read().splitlines()
        clean = strip_comments("\n".join(raw_lines)).splitlines()
        for lineno, line in enumerate(clean, 1):
            match = pattern.search(line)
            if not match:
                continue
            if allowed(raw_lines[lineno - 1], "cache-access"):
                continue
            report(path, lineno, "cache-access",
                   "direct Cache::%s() outside src/gpu/"
                   "mem_system.cc; go through MemSystem::issueRead/"
                   "issueWrite so MSHR and port accounting stay "
                   "conserved" % match.group(1))
            ok = False
    return ok


def check_gpu_chrono(root, report):
    """src/gpu uses host clocks only via the profiling helper."""
    ok = True
    pattern = re.compile(r"std::chrono\b|#\s*include\s*<chrono>"
                         r"|\bclock_gettime\s*\(|\bgettimeofday\s*\(")
    # The one sanctioned clock user: the sampled host profiler.
    exempt = ("src/gpu/host_profile.hh", "src/gpu/host_profile.cc")
    for path in source_files(root, ("src/gpu",)):
        rel = os.path.relpath(path, root)
        if rel in exempt:
            continue
        raw_lines = open(path).read().splitlines()
        clean = strip_comments("\n".join(raw_lines)).splitlines()
        for lineno, line in enumerate(clean, 1):
            if pattern.search(line):
                if allowed(raw_lines[lineno - 1], "gpu-chrono"):
                    continue
                report(path, lineno, "gpu-chrono",
                       "host clock in src/gpu outside the sanctioned "
                       "profiling helper (src/gpu/host_profile.cc); "
                       "wall time must never leak into model state")
                ok = False
    return ok


RULES = [
    ("nondeterminism", check_nondeterminism),
    ("unordered-iter", check_unordered_iteration),
    ("stat-coverage", check_stat_coverage),
    ("no-bare-assert", check_no_bare_assert),
    ("campaign-sweep", check_campaign_sweep),
    ("cache-access", check_cache_access),
    ("gpu-chrono", check_gpu_chrono),
]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=DEFAULT_ROOT,
                        help="repository root (default: %(default)s)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule names and exit")
    args = parser.parse_args()
    if args.list_rules:
        for name, _ in RULES:
            print(name)
        return 0

    failures = 0

    def report(path, lineno, rule, message):
        rel = os.path.relpath(path, args.root)
        print("%s:%d: [%s] %s" % (rel, lineno, rule, message))

    for name, fn in RULES:
        if not fn(args.root, report):
            failures += 1
    if failures:
        print("lint.py: %d rule(s) failed" % failures,
              file=sys.stderr)
    else:
        print("lint.py: all %d rules clean" % len(RULES))
    return failures


if __name__ == "__main__":
    sys.exit(main())
