#!/usr/bin/env python3
"""Determinism & concurrency lint for the LumiBench tree.

Thin entry point over tools/analyze/ -- the token-level analyzer
package (tokenizer, rule engine, rules). Run from anywhere:

    tools/lint.py [--root DIR] [--list-rules] [--rule NAME]...
                  [--json] [--sarif PATH]

Exit status is the number of rule classes with at least one finding
(0 = clean). Suppress a single line with `// lint:allow(<rule>)`.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from analyze import Analyzer, RULES  # noqa: E402
from analyze import rules as _rules  # noqa: E402,F401  (registers RULES)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="LumiBench determinism & concurrency lint")
    parser.add_argument(
        "--root",
        default=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))),
        help="repository root to analyze (default: this checkout)")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list the rules and exit")
    parser.add_argument(
        "--rule", action="append", metavar="NAME",
        help="run only this rule (repeatable)")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as JSON instead of text")
    parser.add_argument(
        "--sarif", metavar="PATH",
        help="also write a SARIF 2.1.0 report to PATH")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, doc, _fn in RULES:
            print("%-16s %s" % (name, " ".join(doc.split())))
        return 0

    known = {name for name, _doc, _fn in RULES}
    if args.rule:
        unknown = sorted(set(args.rule) - known)
        if unknown:
            parser.error("unknown rule(s): %s" % ", ".join(unknown))

    analyzer = Analyzer(args.root)
    status = analyzer.run(only=args.rule)

    if args.sarif:
        analyzer.write_sarif(args.sarif)

    if args.as_json:
        json.dump(analyzer.to_json(), sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for finding in analyzer.findings:
            print(finding.text())
        if analyzer.findings:
            print()
            for rule_name, count in sorted(
                    analyzer.summary().items()):
                print("%-16s %d finding%s" %
                      (rule_name, count, "s" if count != 1 else ""))
            print("lint: %d rule class%s failed" %
                  (status, "es" if status != 1 else ""))
        else:
            print("lint: clean (%d rules)" % len(RULES))
    return status


if __name__ == "__main__":
    sys.exit(main())
