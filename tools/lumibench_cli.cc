/**
 * @file
 * The LumiBench command-line driver: the C++ analog of the paper
 * artifact's run_benchmark.py / generate_results.py /
 * plot_dendrogram.py workflow (Appendix Sec. 5).
 *
 *   lumibench list
 *       Enumerate scenes and the 46 workloads.
 *   lumibench run [--subset|--all|--workload ID]...
 *                 [--config mobile|desktop|alternate]
 *                 [--csv results.csv] [--ppm-dir DIR]
 *       Simulate workloads; write the metric table and images.
 *   lumibench results --csv results.csv
 *       Summarize a metric table (the Fig. 14-style report).
 *   lumibench dendrogram --csv results.csv
 *       PCA + clustering over a metric table (the Fig. 3 figure).
 *
 * Resolution/detail honor LUMI_RES / LUMI_SPP / LUMI_DETAIL /
 * LUMI_QUICK, like the bench binaries.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/cluster.hh"
#include "analysis/pca.hh"
#include "lumibench/report.hh"
#include "lumibench/run_report.hh"
#include "lumibench/runner.hh"
#include "rt/pipeline.hh"
#include "trace/trace.hh"

using namespace lumi;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: lumibench <list|run|results|dendrogram> "
                 "[options]\n"
                 "  run options: --subset | --all | --workload ID "
                 "(repeatable)\n"
                 "               --config mobile|desktop|alternate\n"
                 "               --csv FILE  --ppm-dir DIR  "
                 "--timeline-dir DIR\n"
                 "               --trace FILE  "
                 "--trace-categories sm,rt,cache,dram\n"
                 "               --stats-json FILE  --report FILE\n"
                 "  results/dendrogram options: --csv FILE\n"
                 "  (observability flags imply 'run'; a %%w in FILE "
                 "expands to the workload id)\n");
    return 2;
}

/** Expand "%w" in @p path to @p workload_id. */
std::string
perWorkloadPath(const std::string &path,
                const std::string &workload_id)
{
    std::string out = path;
    size_t pos = out.find("%w");
    if (pos != std::string::npos)
        out.replace(pos, 2, workload_id);
    return out;
}

Workload
parseWorkload(const std::string &id, bool &ok)
{
    ok = false;
    for (const Workload &w : allWorkloads()) {
        if (w.id() == id) {
            ok = true;
            return w;
        }
    }
    for (const Workload &w : gameWorkloads()) {
        if (w.id() == id) {
            ok = true;
            return w;
        }
    }
    return {SceneId::BUNNY, ShaderKind::AmbientOcclusion};
}

int
cmdList()
{
    std::printf("scenes (Table 1):\n");
    for (SceneId id : lumiScenes()) {
        Scene scene = buildScene(id, 0.1f);
        std::printf("  %-6s %s\n", sceneName(id),
                    scene.stress.c_str());
    }
    std::printf("\ncomparison maps: ");
    for (SceneId id : gameScenes())
        std::printf("%s ", sceneName(id));
    std::printf("\n\nworkloads (%zu):\n ", allWorkloads().size());
    int col = 0;
    for (const Workload &w : allWorkloads()) {
        std::printf(" %-9s", w.id().c_str());
        if (++col % 6 == 0)
            std::printf("\n ");
    }
    std::printf("\n\nrepresentative subset (Table 2): ");
    for (const Workload &w : representativeSubset())
        std::printf("%s ", w.id().c_str());
    std::printf("\n");
    return 0;
}

int
cmdRun(const std::vector<std::string> &args)
{
    RunOptions options = RunOptions::fromEnv();
    std::vector<Workload> workloads;
    std::string csv_path = "results.csv";
    std::string ppm_dir;
    std::string timeline_dir;
    std::string trace_path;
    std::string trace_categories = "all";
    std::string stats_path;
    std::string report_path;

    for (size_t i = 0; i < args.size(); i++) {
        const std::string &arg = args[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return args[++i];
        };
        if (arg == "--subset") {
            for (const Workload &w : representativeSubset())
                workloads.push_back(w);
        } else if (arg == "--all") {
            for (const Workload &w : allWorkloads())
                workloads.push_back(w);
        } else if (arg == "--workload") {
            std::string id = next("--workload");
            bool ok = false;
            Workload w = parseWorkload(id, ok);
            if (!ok) {
                std::fprintf(stderr,
                             "unknown workload '%s' (see "
                             "'lumibench list')\n",
                             id.c_str());
                return 2;
            }
            workloads.push_back(w);
        } else if (arg == "--config") {
            std::string name = next("--config");
            if (name == "desktop")
                options.config = GpuConfig::desktop();
            else if (name == "alternate")
                options.config = GpuConfig::alternate();
            else
                options.config = GpuConfig::mobile();
        } else if (arg == "--csv") {
            csv_path = next("--csv");
        } else if (arg == "--ppm-dir") {
            ppm_dir = next("--ppm-dir");
        } else if (arg == "--timeline-dir") {
            timeline_dir = next("--timeline-dir");
        } else if (arg == "--trace") {
            trace_path = next("--trace");
        } else if (arg == "--trace-categories") {
            trace_categories = next("--trace-categories");
        } else if (arg == "--stats-json") {
            stats_path = next("--stats-json");
        } else if (arg == "--report") {
            report_path = next("--report");
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }
    if (workloads.empty()) {
        for (const Workload &w : representativeSubset())
            workloads.push_back(w);
    }
    if (!trace_path.empty()) {
        options.traceMask = parseTraceCategories(trace_categories);
        if (options.traceMask == 0) {
            std::fprintf(stderr,
                         "--trace-categories '%s' selects nothing\n",
                         trace_categories.c_str());
            return 2;
        }
    }
    if (workloads.size() > 1 &&
        trace_path.find("%w") == std::string::npos &&
        (!trace_path.empty() || !stats_path.empty())) {
        std::fprintf(stderr,
                     "note: multiple workloads share one --trace/"
                     "--stats-json path; last run wins (use %%w in "
                     "the path for per-workload files)\n");
    }

    std::vector<WorkloadResult> results;
    std::vector<MetricVector> rows;
    TextTable table({"workload", "cycles", "ipc", "rays",
                     "rt_efficiency", "simt"});
    for (const Workload &workload : workloads) {
        std::fprintf(stderr, "running %-10s ...\n",
                     workload.id().c_str());
        if (!ppm_dir.empty() || !timeline_dir.empty()) {
            // Render via the pipeline directly to keep the image
            // and the AerialVision-style time series.
            Scene scene = buildScene(workload.scene,
                                     options.sceneDetail);
            Gpu gpu(options.config, options.timelineInterval);
            RayTracingPipeline pipeline(gpu, scene, options.params);
            pipeline.render(workload.shader);
            if (!ppm_dir.empty()) {
                pipeline.writePpm(ppm_dir + "/" + workload.id() +
                                  ".ppm");
            }
            if (!timeline_dir.empty()) {
                gpu.timeline().writeCsv(
                    timeline_dir + "/" + workload.id() + ".csv",
                    options.config.numSms *
                        options.config.rtUnitsPerSm);
            }
        }
        WorkloadResult result = runWorkload(workload, options);
        rows.push_back(result.metrics);
        table.addRow({result.id, std::to_string(result.stats.cycles),
                      TextTable::num(result.ipcThread(), 2),
                      std::to_string(result.stats.raysTraced),
                      TextTable::num(result.stats.rtEfficiency(), 3),
                      TextTable::num(result.stats.simtEfficiency(),
                                     3)});
        if (!trace_path.empty() && result.trace) {
            std::string path = perWorkloadPath(trace_path,
                                               result.id);
            if (!result.trace->writeChromeTrace(path)) {
                std::fprintf(stderr, "failed to write %s\n",
                             path.c_str());
                return 1;
            }
        }
        if (!stats_path.empty()) {
            std::string path = perWorkloadPath(stats_path,
                                               result.id);
            FILE *file = std::fopen(path.c_str(), "w");
            bool ok = file != nullptr;
            if (ok && std::fputs(result.statsJson.c_str(),
                                 file) == EOF)
                ok = false;
            if (file && std::fclose(file) != 0)
                ok = false;
            if (!ok) {
                std::fprintf(stderr, "failed to write %s\n",
                             path.c_str());
                return 1;
            }
        }
        if (!report_path.empty())
            results.push_back(std::move(result));
    }
    writeCsv(csv_path, rows);
    if (!report_path.empty() &&
        !writeRunReport(report_path, results, options)) {
        std::fprintf(stderr, "failed to write %s\n",
                     report_path.c_str());
        return 1;
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Simulation complete! wrote %s (%zu workloads x %zu "
                "metrics)\n",
                csv_path.c_str(), rows.size(),
                metricSchema().size());
    return 0;
}

std::string
csvArg(const std::vector<std::string> &args)
{
    for (size_t i = 0; i + 1 < args.size(); i++) {
        if (args[i] == "--csv")
            return args[i + 1];
    }
    return "results.csv";
}

int
cmdResults(const std::vector<std::string> &args)
{
    std::vector<MetricVector> rows = readCsv(csvArg(args));
    if (rows.empty()) {
        std::fprintf(stderr, "no rows in %s\n",
                     csvArg(args).c_str());
        return 1;
    }
    int ipc = metricIndex("ipc_thread");
    int rt_eff = metricIndex("rt_efficiency");
    int rt_occ = metricIndex("rt_occupancy");
    int dram_eff = metricIndex("dram_efficiency");
    TextTable table({"workload", "ipc", "rt_occupancy",
                     "rt_efficiency", "dram_efficiency"});
    for (const MetricVector &row : rows) {
        table.addRow({row.workload, TextTable::num(row[ipc], 2),
                      TextTable::num(row[rt_occ], 2),
                      TextTable::num(row[rt_eff], 3),
                      TextTable::num(row[dram_eff], 3)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdDendrogram(const std::vector<std::string> &args)
{
    std::vector<MetricVector> rows = readCsv(csvArg(args));
    if (rows.size() < 2) {
        std::fprintf(stderr, "need at least 2 rows\n");
        return 1;
    }
    std::vector<std::vector<double>> data;
    std::vector<std::string> names;
    for (const MetricVector &row : rows) {
        data.push_back(row.values);
        names.push_back(row.workload);
    }
    std::vector<int> kept;
    auto dense = denseColumns(data, kept);
    PcaResult reduced = pca(dense, 0.9);
    std::printf("PCA: %d components, %.1f%% variance, %zu metrics\n",
                reduced.kept, 100.0 * reduced.coveredVariance,
                kept.size());
    Dendrogram tree = agglomerate(reduced.scores);
    std::printf("%s", renderDendrogram(tree, names).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (command.size() >= 2 && command[0] == '-') {
        // Bare observability/run flags imply the run command.
        command = "run";
        args.assign(argv + 1, argv + argc);
    }
    if (command == "list")
        return cmdList();
    if (command == "run")
        return cmdRun(args);
    if (command == "results")
        return cmdResults(args);
    if (command == "dendrogram")
        return cmdDendrogram(args);
    return usage();
}
