/**
 * @file
 * The LumiBench command-line driver: the C++ analog of the paper
 * artifact's run_benchmark.py / generate_results.py /
 * plot_dendrogram.py workflow (Appendix Sec. 5).
 *
 *   lumibench list
 *       Enumerate scenes and the 46 workloads.
 *   lumibench run [--subset|--all|--workload ID]...
 *                 [--config mobile|desktop|alternate|table4]
 *                 [--csv results.csv] [--ppm-dir DIR]
 *       Simulate workloads; write the metric table and images.
 *   lumibench results --csv results.csv
 *       Summarize a metric table (the Fig. 14-style report).
 *   lumibench dendrogram --csv results.csv
 *       PCA + clustering over a metric table (the Fig. 3 figure).
 *   lumibench campaign [--subset|--all|--compute|--workload ID]...
 *                      [--config NAME]... [--jobs N] [--retries N]
 *                      [--cache-dir DIR] [--manifest FILE]
 *                      [--event-log FILE] [--heartbeat SECONDS]
 *       Run a job matrix (workloads x configs) through the parallel
 *       campaign engine; write an aggregated campaign.json manifest.
 *   lumibench query --cache-dir DIR --stat NAME [--series]
 *                   [--where KEY=VALUE]... [--list-stats]
 *                   [--breakdown] [--json]
 *       Answer stat/time-series queries over cached run reports;
 *       --breakdown renders the top-down cycle account (profile.*)
 *       as stacked percentages.
 *   lumibench serve --cache-dir DIR [--port N] [--max-requests N]
 *       Serve the same queries over an embedded HTTP endpoint.
 *
 * Resolution/detail honor LUMI_RES / LUMI_SPP / LUMI_DETAIL /
 * LUMI_QUICK, like the bench binaries; the campaign command also
 * honors LUMI_JOBS / LUMI_RETRIES / LUMI_CACHE_DIR / LUMI_EVENT_LOG /
 * LUMI_HEARTBEAT. CLI flags always win over environment defaults
 * (tests/test_query.cc pins that precedence).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/cluster.hh"
#include "analysis/pca.hh"
#include "campaign/campaign.hh"
#include "lumibench/query.hh"
#include "lumibench/report.hh"
#include "lumibench/run_report.hh"
#include "lumibench/runner.hh"
#include "lumibench/serve.hh"
#include "rt/pipeline.hh"
#include "trace/json.hh"
#include "trace/stat_registry.hh"
#include "trace/trace.hh"

using namespace lumi;

namespace
{

int
usage()
{
    std::fprintf(stderr,
                 "usage: lumibench "
                 "<list|run|campaign|query|serve|results|dendrogram> "
                 "[options]\n"
                 "  run options: --subset | --all | --workload ID "
                 "(repeatable)\n"
                 "               --config "
                 "mobile|desktop|alternate|table4\n"
                 "               --res N  --spp N  --detail X  "
                 "--interval-stats CYCLES  --self-profile\n"
                 "               --csv FILE  --ppm-dir DIR  "
                 "--timeline-dir DIR\n"
                 "               --trace FILE  "
                 "--trace-categories sm,rt,cache,dram\n"
                 "               --stats-json FILE  --report FILE\n"
                 "  campaign options: --subset | --all | --compute | "
                 "--workload ID (repeatable)\n"
                 "               --config NAME (repeatable: job "
                 "matrix = workloads x configs)\n"
                 "               --res N  --spp N  --detail X  "
                 "--interval-stats CYCLES\n"
                 "               --jobs N  --retries N  "
                 "--cache-dir DIR\n"
                 "               --manifest FILE (default "
                 "campaign.json)  --trace FILE\n"
                 "               --event-log FILE (JSONL)  "
                 "--heartbeat SECONDS\n"
                 "  query options: --cache-dir DIR  --stat NAME  "
                 "--series\n"
                 "               --where KEY=VALUE (repeatable)  "
                 "--list-stats  --breakdown  --json\n"
                 "  serve options: --cache-dir DIR  --port N  "
                 "--max-requests N\n"
                 "  results/dendrogram options: --csv FILE\n"
                 "  (observability flags imply 'run'; a %%w in FILE "
                 "expands to the workload id)\n");
    return 2;
}

/** Expand "%w" in @p path to @p workload_id. */
std::string
perWorkloadPath(const std::string &path,
                const std::string &workload_id)
{
    std::string out = path;
    size_t pos = out.find("%w");
    if (pos != std::string::npos)
        out.replace(pos, 2, workload_id);
    return out;
}

Workload
parseWorkload(const std::string &id, bool &ok)
{
    ok = false;
    for (const Workload &w : allWorkloads()) {
        if (w.id() == id) {
            ok = true;
            return w;
        }
    }
    for (const Workload &w : gameWorkloads()) {
        if (w.id() == id) {
            ok = true;
            return w;
        }
    }
    for (const Workload &w : rtqWorkloads()) {
        if (w.id() == id) {
            ok = true;
            return w;
        }
    }
    return {SceneId::BUNNY, ShaderKind::AmbientOcclusion};
}

int
cmdList()
{
    std::printf("scenes (Table 1):\n");
    for (SceneId id : lumiScenes()) {
        Scene scene = buildScene(id, 0.1f);
        std::printf("  %-6s %s\n", sceneName(id),
                    scene.stress.c_str());
    }
    std::printf("\ncomparison maps: ");
    for (SceneId id : gameScenes())
        std::printf("%s ", sceneName(id));
    std::printf("\n\nworkloads (%zu):\n ", allWorkloads().size());
    int col = 0;
    for (const Workload &w : allWorkloads()) {
        std::printf(" %-9s", w.id().c_str());
        if (++col % 6 == 0)
            std::printf("\n ");
    }
    std::printf("\n\nrepresentative subset (Table 2): ");
    for (const Workload &w : representativeSubset())
        std::printf("%s ", w.id().c_str());
    std::printf("\n\nRT-cores-as-compute query family: ");
    for (const Workload &w : rtqWorkloads())
        std::printf("%s ", w.id().c_str());
    std::printf("\n");
    return 0;
}

int
cmdRun(const std::vector<std::string> &args)
{
    RunOptions options = RunOptions::fromEnv();
    std::vector<Workload> workloads;
    std::string csv_path = "results.csv";
    std::string ppm_dir;
    std::string timeline_dir;
    std::string trace_path;
    std::string trace_categories;
    std::string stats_path;
    std::string report_path;

    for (size_t i = 0; i < args.size(); i++) {
        const std::string &arg = args[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return args[++i];
        };
        if (arg == "--subset") {
            for (const Workload &w : representativeSubset())
                workloads.push_back(w);
        } else if (arg == "--all") {
            for (const Workload &w : allWorkloads())
                workloads.push_back(w);
        } else if (arg == "--workload") {
            std::string id = next("--workload");
            bool ok = false;
            Workload w = parseWorkload(id, ok);
            if (!ok) {
                std::fprintf(stderr,
                             "unknown workload '%s' (see "
                             "'lumibench list')\n",
                             id.c_str());
                return 2;
            }
            workloads.push_back(w);
        } else if (arg == "--config") {
            std::string name = next("--config");
            if (name == "desktop")
                options.config = GpuConfig::desktop();
            else if (name == "alternate")
                options.config = GpuConfig::alternate();
            else if (name == "table4")
                options.config = GpuConfig::table4();
            else
                options.config = GpuConfig::mobile();
        } else if (arg == "--csv") {
            csv_path = next("--csv");
        } else if (arg == "--ppm-dir") {
            ppm_dir = next("--ppm-dir");
        } else if (arg == "--timeline-dir") {
            timeline_dir = next("--timeline-dir");
        } else if (arg == "--trace") {
            trace_path = next("--trace");
        } else if (arg == "--trace-categories") {
            trace_categories = next("--trace-categories");
        } else if (arg == "--stats-json") {
            stats_path = next("--stats-json");
        } else if (arg == "--report") {
            report_path = next("--report");
        } else if (arg == "--self-profile") {
            options.selfProfile = true;
        } else if (arg == "--res" || arg == "--spp" ||
                   arg == "--detail" ||
                   arg == "--interval-stats") {
            applyRunFlag(options, arg, next(arg.c_str()));
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }
    if (workloads.empty()) {
        for (const Workload &w : representativeSubset())
            workloads.push_back(w);
    }
    if (!trace_path.empty()) {
        // Precedence: an explicit --trace-categories always wins; a
        // LUMI_TRACE selection from fromEnv() is honored otherwise;
        // the default is everything.
        if (!trace_categories.empty())
            options.traceMask =
                parseTraceCategories(trace_categories);
        else if (options.traceMask == 0)
            options.traceMask = parseTraceCategories("all");
        if (options.traceMask == 0) {
            std::fprintf(stderr,
                         "--trace-categories '%s' selects nothing\n",
                         trace_categories.c_str());
            return 2;
        }
    }
    if (workloads.size() > 1 &&
        trace_path.find("%w") == std::string::npos &&
        (!trace_path.empty() || !stats_path.empty())) {
        std::fprintf(stderr,
                     "note: multiple workloads share one --trace/"
                     "--stats-json path; last run wins (use %%w in "
                     "the path for per-workload files)\n");
    }

    std::vector<WorkloadResult> results;
    std::vector<MetricVector> rows;
    TextTable table({"workload", "cycles", "ipc", "rays",
                     "rt_efficiency", "simt"});
    for (const Workload &workload : workloads) {
        std::fprintf(stderr, "running %-10s ...\n",
                     workload.id().c_str());
        if ((!ppm_dir.empty() || !timeline_dir.empty()) &&
            !isQueryShader(workload.shader)) {
            // Query workloads have no image to write; the RTQ
            // pipeline runs inside runWorkload() below.
            // Render via the pipeline directly to keep the image
            // and the AerialVision-style time series.
            Scene scene = buildScene(workload.scene,
                                     options.sceneDetail);
            Gpu gpu(options.config, options.timelineInterval);
            RayTracingPipeline pipeline(gpu, scene, options.params);
            pipeline.render(workload.shader);
            if (!ppm_dir.empty()) {
                pipeline.writePpm(ppm_dir + "/" + workload.id() +
                                  ".ppm");
            }
            if (!timeline_dir.empty()) {
                gpu.timeline().writeCsv(
                    timeline_dir + "/" + workload.id() + ".csv",
                    options.config.numSms *
                        options.config.rtUnitsPerSm);
            }
        }
        WorkloadResult result = runWorkload(workload, options);
        rows.push_back(result.metrics);
        table.addRow({result.id, std::to_string(result.stats.cycles),
                      TextTable::num(result.ipcThread(), 2),
                      std::to_string(result.stats.raysTraced),
                      TextTable::num(result.stats.rtEfficiency(), 3),
                      TextTable::num(result.stats.simtEfficiency(),
                                     3)});
        if (!trace_path.empty() && result.trace) {
            std::string path = perWorkloadPath(trace_path,
                                               result.id);
            if (!result.trace->writeChromeTrace(path)) {
                std::fprintf(stderr, "failed to write %s\n",
                             path.c_str());
                return 1;
            }
        }
        if (!stats_path.empty()) {
            std::string path = perWorkloadPath(stats_path,
                                               result.id);
            FILE *file = std::fopen(path.c_str(), "w");
            bool ok = file != nullptr;
            if (ok && std::fputs(result.statsJson.c_str(),
                                 file) == EOF)
                ok = false;
            if (file && std::fclose(file) != 0)
                ok = false;
            if (!ok) {
                std::fprintf(stderr, "failed to write %s\n",
                             path.c_str());
                return 1;
            }
        }
        if (!report_path.empty())
            results.push_back(std::move(result));
    }
    writeCsv(csv_path, rows);
    if (!report_path.empty() &&
        !writeRunReport(report_path, results, options)) {
        std::fprintf(stderr, "failed to write %s\n",
                     report_path.c_str());
        return 1;
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Simulation complete! wrote %s (%zu workloads x %zu "
                "metrics)\n",
                csv_path.c_str(), rows.size(),
                metricSchema().size());
    return 0;
}

/** Strict non-negative integer flag value; exits on junk. */
int
parseIntFlag(const char *flag, const std::string &text)
{
    char *end = nullptr;
    long value = std::strtol(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || value < 0) {
        std::fprintf(stderr, "%s needs a non-negative integer "
                             "(got '%s')\n",
                     flag, text.c_str());
        std::exit(2);
    }
    return static_cast<int>(value);
}

int
cmdCampaign(const std::vector<std::string> &args)
{
    RunOptions base = RunOptions::fromEnv();
    campaign::CampaignOptions engine =
        campaign::CampaignOptions::fromEnv();
    engine.echoProgress = true;

    std::vector<Workload> workloads;
    bool compute = false;
    std::vector<std::string> configs;
    std::string manifest_path = "campaign.json";
    std::string trace_path;

    for (size_t i = 0; i < args.size(); i++) {
        const std::string &arg = args[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return args[++i];
        };
        if (arg == "--subset") {
            for (const Workload &w : representativeSubset())
                workloads.push_back(w);
        } else if (arg == "--all") {
            for (const Workload &w : allWorkloads())
                workloads.push_back(w);
        } else if (arg == "--compute") {
            compute = true;
        } else if (arg == "--workload") {
            std::string id = next("--workload");
            bool ok = false;
            Workload w = parseWorkload(id, ok);
            if (!ok) {
                std::fprintf(stderr,
                             "unknown workload '%s' (see "
                             "'lumibench list')\n",
                             id.c_str());
                return 2;
            }
            workloads.push_back(w);
        } else if (arg == "--config") {
            configs.push_back(next("--config"));
        } else if (arg == "--jobs") {
            engine.jobs = parseIntFlag("--jobs", next("--jobs"));
        } else if (arg == "--retries") {
            engine.retries = parseIntFlag("--retries",
                                          next("--retries"));
        } else if (arg == "--cache-dir") {
            engine.cacheDir = next("--cache-dir");
        } else if (arg == "--manifest") {
            manifest_path = next("--manifest");
        } else if (arg == "--trace") {
            trace_path = next("--trace");
        } else if (arg == "--event-log") {
            engine.eventLogPath = next("--event-log");
        } else if (arg == "--heartbeat") {
            std::string text = next("--heartbeat");
            char *end = nullptr;
            double parsed = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' ||
                parsed < 0.0) {
                std::fprintf(stderr,
                             "--heartbeat needs seconds >= 0 "
                             "(got '%s')\n",
                             text.c_str());
                return 2;
            }
            engine.heartbeatSeconds = parsed;
        } else if (arg == "--self-profile") {
            base.selfProfile = true;
        } else if (arg == "--res" || arg == "--spp" ||
                   arg == "--detail" ||
                   arg == "--interval-stats") {
            applyRunFlag(base, arg, next(arg.c_str()));
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }
    if (workloads.empty() && !compute) {
        for (const Workload &w : representativeSubset())
            workloads.push_back(w);
    }
    if (configs.empty())
        configs.push_back("mobile");

    // The job matrix: every selected workload/kernel under every
    // selected config, config-major so one config's jobs are
    // adjacent in the manifest.
    std::vector<campaign::Job> jobs;
    std::vector<std::string> job_configs;
    for (const std::string &name : configs) {
        RunOptions options = base;
        if (name == "desktop")
            options.config = GpuConfig::desktop();
        else if (name == "alternate")
            options.config = GpuConfig::alternate();
        else if (name == "table4")
            options.config = GpuConfig::table4();
        else if (name == "mobile")
            options.config = GpuConfig::mobile();
        else {
            std::fprintf(stderr,
                         "unknown config '%s' (mobile, desktop, "
                         "alternate, table4)\n",
                         name.c_str());
            return 2;
        }
        for (const Workload &w : workloads) {
            jobs.push_back(campaign::Job::rayTracing(w, options));
            job_configs.push_back(name);
        }
        if (compute) {
            for (ComputeKernel kernel : allComputeKernels()) {
                jobs.push_back(campaign::Job::compute(kernel,
                                                      options));
                job_configs.push_back(name);
            }
        }
    }

    Tracer tracer;
    if (!trace_path.empty()) {
        tracer.setMask(traceBit(TraceCategory::Phase));
        engine.tracer = &tracer;
    }

    std::fprintf(stderr,
                 "campaign: %zu jobs (%zu workloads%s x %zu "
                 "configs), %d workers\n",
                 jobs.size(), workloads.size(),
                 compute ? " + compute" : "", configs.size(),
                 campaign::resolveWorkerCount(engine.jobs,
                                              jobs.size()));
    campaign::CampaignResult done =
        campaign::runCampaign(jobs, engine);

    // The manifest: one machine-readable document for the whole
    // sweep — per-job status, attempts, phase timings and the full
    // stat dump, plus the aggregated campaign.jobs.* counters.
    StatRegistry registry;
    done.registerStats(registry);
    JsonWriter json;
    json.beginObject();
    json.key("schema");
    json.value("lumibench-campaign-v1");
    json.key("workers");
    json.value(done.workers);
    json.key("wall_seconds");
    json.value(done.wallSeconds);
    json.key("jobs");
    json.beginArray();
    for (size_t i = 0; i < done.outcomes.size(); i++) {
        const campaign::JobOutcome &outcome = done.outcomes[i];
        json.beginObject();
        json.key("id");
        json.value(outcome.id);
        json.key("kind");
        json.value(jobs[i].kind == campaign::Job::Kind::Compute
                       ? "compute"
                       : "ray_tracing");
        json.key("config");
        json.value(job_configs[i]);
        json.key("status");
        json.value(campaign::jobStatusName(outcome.status));
        json.key("attempts");
        json.value(outcome.attempts);
        json.key("from_cache");
        json.value(outcome.fromCache);
        json.key("worker");
        json.value(outcome.worker);
        json.key("wall_seconds");
        json.value(outcome.wallSeconds);
        if (!outcome.error.empty()) {
            json.key("error");
            json.value(outcome.error);
        }
        if (outcome.succeeded()) {
            const WorkloadResult &result = outcome.result;
            json.key("cycles");
            json.value(result.stats.cycles);
            json.key("phases");
            json.beginArray();
            for (const PhaseTiming &phase : result.phases) {
                json.beginObject();
                json.key("name");
                json.value(phase.name);
                json.key("seconds");
                json.value(phase.seconds);
                json.key("count");
                json.value(phase.count);
                json.endObject();
            }
            json.endArray();
            if (!result.statsJson.empty()) {
                json.key("stats");
                json.raw(result.statsJson);
            }
        }
        json.endObject();
    }
    json.endArray();
    json.key("stats");
    json.raw(registry.toJson());
    json.endObject();

    FILE *file = std::fopen(manifest_path.c_str(), "w");
    bool wrote = file != nullptr;
    if (wrote && std::fputs(json.str().c_str(), file) == EOF)
        wrote = false;
    if (file && std::fclose(file) != 0)
        wrote = false;
    if (!wrote) {
        std::fprintf(stderr, "failed to write %s\n",
                     manifest_path.c_str());
        return 1;
    }
    if (!trace_path.empty() &&
        !tracer.writeChromeTrace(trace_path)) {
        std::fprintf(stderr, "failed to write %s\n",
                     trace_path.c_str());
        return 1;
    }

    std::printf("campaign: %llu ok, %llu cached, %llu failed, "
                "%llu timeout (%llu retries) in %.2fs on %d "
                "workers; wrote %s\n",
                static_cast<unsigned long long>(done.stats.ok),
                static_cast<unsigned long long>(done.stats.cached),
                static_cast<unsigned long long>(done.stats.failed),
                static_cast<unsigned long long>(done.stats.timeout),
                static_cast<unsigned long long>(done.stats.retries),
                done.wallSeconds, done.workers,
                manifest_path.c_str());
    return done.allOk() ? 0 : 1;
}

/** Report directory: flag value, else LUMI_CACHE_DIR. */
std::string
reportDir(const std::string &flag_value)
{
    if (!flag_value.empty())
        return flag_value;
    if (const char *dir = std::getenv("LUMI_CACHE_DIR");
        dir && *dir)
        return dir;
    return "";
}

int
cmdQuery(const std::vector<std::string> &args)
{
    std::string dir;
    std::string stat;
    bool series = false;
    bool list_stats = false;
    bool breakdown = false;
    bool as_json = false;
    query::QueryFilter filter;

    for (size_t i = 0; i < args.size(); i++) {
        const std::string &arg = args[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return args[++i];
        };
        if (arg == "--cache-dir" || arg == "--dir") {
            dir = next(arg.c_str());
        } else if (arg == "--stat") {
            stat = next("--stat");
        } else if (arg == "--series") {
            series = true;
        } else if (arg == "--list-stats") {
            list_stats = true;
        } else if (arg == "--breakdown") {
            breakdown = true;
        } else if (arg == "--json") {
            as_json = true;
        } else if (arg == "--where") {
            std::string term = next("--where");
            if (!filter.add(term)) {
                std::fprintf(stderr,
                             "--where needs KEY=VALUE with a known "
                             "key (got '%s')\n",
                             term.c_str());
                return 2;
            }
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }

    dir = reportDir(dir);
    if (dir.empty()) {
        std::fprintf(stderr, "query needs --cache-dir DIR (or "
                             "LUMI_CACHE_DIR)\n");
        return 2;
    }
    query::ReportIndex index = query::ReportIndex::scan(dir);
    if (index.empty()) {
        std::fprintf(stderr, "no run reports under %s\n",
                     dir.c_str());
        return 1;
    }

    if (list_stats) {
        for (const std::string &name :
             query::listStats(index, filter))
            std::printf("%s\n", name.c_str());
        return 0;
    }
    if (breakdown) {
        std::vector<query::BreakdownRow> rows =
            query::queryBreakdown(index, filter);
        if (rows.empty()) {
            std::fprintf(stderr,
                         "no profile.* buckets matched (reports "
                         "predate the profiler, or the filter "
                         "matched nothing)\n");
            return 1;
        }
        auto pct = [](double share) {
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%.1f", share * 100.0);
            return std::string(buf);
        };
        if (as_json) {
            JsonWriter json;
            json.beginArray();
            for (const query::BreakdownRow &row : rows) {
                json.beginObject();
                json.key("file");
                json.value(row.file);
                json.key("workload");
                json.value(row.workload);
                json.key("cycles");
                json.value(row.cycles);
                json.key("sm_share");
                json.beginObject();
                for (int b = 0; b < numSmCycleBuckets; b++) {
                    json.key(smCycleBucketName(
                        static_cast<SmCycleBucket>(b)));
                    json.value(row.smShare[b]);
                }
                json.endObject();
                json.key("rt_share");
                json.beginObject();
                for (int b = 0; b < numRtCycleBuckets; b++) {
                    json.key(rtCycleBucketName(
                        static_cast<RtCycleBucket>(b)));
                    json.value(row.rtShare[b]);
                }
                json.endObject();
                json.endObject();
            }
            json.endArray();
            std::printf("%s\n", json.str().c_str());
            return 0;
        }
        // Two stacked-percentage tables: issue slots, then RT-unit
        // cycles. Conservation pins each row to 100%.
        std::vector<std::string> sm_heads = {"workload"};
        for (int b = 0; b < numSmCycleBuckets; b++)
            sm_heads.push_back(smCycleBucketName(
                static_cast<SmCycleBucket>(b)));
        TextTable sm_table(sm_heads);
        for (const query::BreakdownRow &row : rows) {
            std::vector<std::string> cells = {row.workload};
            for (int b = 0; b < numSmCycleBuckets; b++)
                cells.push_back(pct(row.smShare[b]));
            sm_table.addRow(cells);
        }
        std::printf("SM issue slots (%% of cycles)\n%s\n",
                    sm_table.render().c_str());
        std::vector<std::string> rt_heads = {"workload"};
        for (int b = 0; b < numRtCycleBuckets; b++)
            rt_heads.push_back(rtCycleBucketName(
                static_cast<RtCycleBucket>(b)));
        TextTable rt_table(rt_heads);
        for (const query::BreakdownRow &row : rows) {
            std::vector<std::string> cells = {row.workload};
            for (int b = 0; b < numRtCycleBuckets; b++)
                cells.push_back(pct(row.rtShare[b]));
            rt_table.addRow(cells);
        }
        std::printf("RT units (%% of cycles)\n%s",
                    rt_table.render().c_str());
        return 0;
    }
    if (stat.empty()) {
        std::fprintf(stderr,
                     "query needs --stat NAME (or --list-stats)\n");
        return 2;
    }

    if (series) {
        std::vector<query::SeriesResult> results =
            query::querySeries(index, stat, filter);
        if (results.empty()) {
            std::fprintf(stderr,
                         "no interval series for '%s' (was the run "
                         "sampled with --interval-stats?)\n",
                         stat.c_str());
            return 1;
        }
        if (as_json) {
            JsonWriter json;
            json.beginArray();
            for (const query::SeriesResult &result : results) {
                json.beginObject();
                json.key("file");
                json.value(result.file);
                json.key("workload");
                json.value(result.workload);
                json.key("interval");
                json.value(result.interval);
                json.key("cycles");
                json.beginArray();
                for (uint64_t cycle : result.cycles)
                    json.value(cycle);
                json.endArray();
                json.key("values");
                json.beginArray();
                for (uint64_t value : result.values)
                    json.value(value);
                json.endArray();
                json.key("deltas");
                json.beginArray();
                for (uint64_t delta : result.deltas)
                    json.value(delta);
                json.endArray();
                json.endObject();
            }
            json.endArray();
            std::printf("%s\n", json.str().c_str());
            return 0;
        }
        for (const query::SeriesResult &result : results) {
            std::printf("%s  %s  (interval %llu, %zu samples, "
                        "%s)\n",
                        result.workload.c_str(), stat.c_str(),
                        static_cast<unsigned long long>(
                            result.interval),
                        result.cycles.size(),
                        result.file.c_str());
            std::printf("  %12s %16s %16s\n", "cycle",
                        "cumulative", "delta");
            for (size_t i = 0; i < result.cycles.size(); i++) {
                std::printf("  %12llu %16llu %16llu\n",
                            static_cast<unsigned long long>(
                                result.cycles[i]),
                            static_cast<unsigned long long>(
                                result.values[i]),
                            static_cast<unsigned long long>(
                                result.deltas[i]));
            }
        }
        return 0;
    }

    std::vector<query::StatRow> rows =
        query::queryStat(index, stat, filter);
    if (rows.empty()) {
        std::fprintf(stderr, "no values for '%s'\n", stat.c_str());
        return 1;
    }
    if (as_json) {
        JsonWriter json;
        json.beginArray();
        for (const query::StatRow &row : rows) {
            json.beginObject();
            json.key("file");
            json.value(row.file);
            json.key("workload");
            json.value(row.workload);
            json.key("value");
            json.raw(row.token);
            json.endObject();
        }
        json.endArray();
        std::printf("%s\n", json.str().c_str());
        return 0;
    }
    TextTable table({"workload", stat, "file"});
    for (const query::StatRow &row : rows)
        table.addRow({row.workload, row.token, row.file});
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdServe(const std::vector<std::string> &args)
{
    std::string dir;
    int port = 8090;
    int max_requests = 0;

    for (size_t i = 0; i < args.size(); i++) {
        const std::string &arg = args[i];
        auto next = [&](const char *flag) -> std::string {
            if (i + 1 >= args.size()) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return args[++i];
        };
        if (arg == "--cache-dir" || arg == "--dir") {
            dir = next(arg.c_str());
        } else if (arg == "--port") {
            port = parseIntFlag("--port", next("--port"));
        } else if (arg == "--max-requests") {
            max_requests = parseIntFlag("--max-requests",
                                        next("--max-requests"));
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            return 2;
        }
    }

    dir = reportDir(dir);
    if (dir.empty()) {
        std::fprintf(stderr, "serve needs --cache-dir DIR (or "
                             "LUMI_CACHE_DIR)\n");
        return 2;
    }
    query::ReportServer server(dir);
    if (!server.bind(port))
        return 1;
    std::fprintf(stderr,
                 "serving %s on http://127.0.0.1:%d/ (routes: "
                 "/healthz /version /index /stats /stat /series "
                 "/breakdown /view /report)\n",
                 dir.c_str(), server.port());
    server.serve(max_requests);
    return 0;
}

std::string
csvArg(const std::vector<std::string> &args)
{
    for (size_t i = 0; i + 1 < args.size(); i++) {
        if (args[i] == "--csv")
            return args[i + 1];
    }
    return "results.csv";
}

int
cmdResults(const std::vector<std::string> &args)
{
    std::vector<MetricVector> rows = readCsv(csvArg(args));
    if (rows.empty()) {
        std::fprintf(stderr, "no rows in %s\n",
                     csvArg(args).c_str());
        return 1;
    }
    int ipc = metricIndex("ipc_thread");
    int rt_eff = metricIndex("rt_efficiency");
    int rt_occ = metricIndex("rt_occupancy");
    int dram_eff = metricIndex("dram_efficiency");
    TextTable table({"workload", "ipc", "rt_occupancy",
                     "rt_efficiency", "dram_efficiency"});
    for (const MetricVector &row : rows) {
        table.addRow({row.workload, TextTable::num(row[ipc], 2),
                      TextTable::num(row[rt_occ], 2),
                      TextTable::num(row[rt_eff], 3),
                      TextTable::num(row[dram_eff], 3)});
    }
    std::printf("%s", table.render().c_str());
    return 0;
}

int
cmdDendrogram(const std::vector<std::string> &args)
{
    std::vector<MetricVector> rows = readCsv(csvArg(args));
    if (rows.size() < 2) {
        std::fprintf(stderr, "need at least 2 rows\n");
        return 1;
    }
    std::vector<std::vector<double>> data;
    std::vector<std::string> names;
    for (const MetricVector &row : rows) {
        data.push_back(row.values);
        names.push_back(row.workload);
    }
    std::vector<int> kept;
    auto dense = denseColumns(data, kept);
    PcaResult reduced = pca(dense, 0.9);
    std::printf("PCA: %d components, %.1f%% variance, %zu metrics\n",
                reduced.kept, 100.0 * reduced.coveredVariance,
                kept.size());
    Dendrogram tree = agglomerate(reduced.scores);
    std::printf("%s", renderDendrogram(tree, names).c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    std::string command = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (command.size() >= 2 && command[0] == '-') {
        // Bare observability/run flags imply the run command.
        command = "run";
        args.assign(argv + 1, argv + argc);
    }
    if (command == "list")
        return cmdList();
    if (command == "run")
        return cmdRun(args);
    if (command == "campaign")
        return cmdCampaign(args);
    if (command == "query")
        return cmdQuery(args);
    if (command == "serve")
        return cmdServe(args);
    if (command == "results")
        return cmdResults(args);
    if (command == "dendrogram")
        return cmdDendrogram(args);
    return usage();
}
