#!/usr/bin/env python3
"""Self-test for the tools/analyze static analyzer.

Registered in ctest as `lint_fixtures`. Four stages:

  1. Tokenizer regressions: the char-literal/raw-string bugs the old
     strip_comments scanner had, digit separators, include capture.
  2. Fixture sweep: run the analyzer over tests/lint_fixtures (a
     miniature repo root) and require the findings to EXACTLY equal
     the `// expect(<rule>)` markers in the fixtures -- every rule
     fires on its marked line and nowhere else, and the
     `// lint:allow(<rule>)` suppression holds.
  3. Output formats: --json and --sarif must carry the same findings
     in the documented shapes.
  4. Real tree: tools/lint.py on this checkout must exit 0.
"""

import json
import os
import re
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(HERE)
FIXTURES = os.path.join(REPO, "tests", "lint_fixtures")
LINT = os.path.join(HERE, "lint.py")

sys.path.insert(0, HERE)
from analyze import Analyzer, RULES  # noqa: E402
from analyze import rules as _rules  # noqa: E402,F401
from analyze import tokens as tok  # noqa: E402

EXPECT_RE = re.compile(r"//\s*expect\(([a-z-]+)\)")

failures = []


def check(cond, what):
    tag = "ok  " if cond else "FAIL"
    print("%s %s" % (tag, what))
    if not cond:
        failures.append(what)


# ------------------------------------------------------------- #
# 1. Tokenizer regressions.
# ------------------------------------------------------------- #

def tokenizer_checks():
    # Char literal holding a quote must not open a phantom string:
    # the rand() after it has to survive into the code view.
    text = "if (c == '\"') call(rand());\n"
    clean = tok.code_view(text)
    check("rand" in clean,
          "tokenizer: code after a '\"' char literal stays visible")
    check(len(clean) == len(text),
          "tokenizer: code_view is byte-aligned")

    # Raw string contents must be blanked even when they contain a
    # plain `)"` sequence.
    text = 'auto s = R"(rand() is "banned")";\ncall(rand());\n'
    clean = tok.code_view(text)
    check(clean.count("rand") == 1,
          "tokenizer: raw string contents blanked, code after kept")

    # Delimited raw string.
    toks = tok.tokenize('R"x(a)" still inside)x" done')
    strs = [t for t in toks if t.kind == "str"]
    check(len(strs) == 1 and strs[0].text.endswith(')x"'),
          "tokenizer: delimited raw string R\"x(...)x\" is one token")

    # Digit separators never open a char literal.
    toks = tok.tokenize("int n = 1'000'000;")
    kinds = [(t.kind, t.text) for t in toks]
    check(("num", "1'000'000") in kinds,
          "tokenizer: digit separators lex as one number")

    # Include targets are captured and survive the code view.
    text = '#include <chrono>\n#include "gpu/gpu.hh"\n'
    toks = tok.tokenize(text)
    targets = [t.text for t in toks if t.kind == "include"]
    check(targets == ["<chrono>", '"gpu/gpu.hh"'],
          "tokenizer: include targets captured")
    check("<chrono>" in tok.code_view(text, toks),
          "tokenizer: include target survives code_view")

    # Comments vanish from the code view.
    clean = tok.code_view("x(); // rand()\n/* time(NULL) */ y();\n")
    check("rand" not in clean and "time" not in clean
          and "y()" in clean,
          "tokenizer: comment bodies blanked")


# ------------------------------------------------------------- #
# 2. Fixture sweep: findings == expect() markers, exactly.
# ------------------------------------------------------------- #

def expected_findings():
    expected = set()
    for dirpath, _, names in os.walk(FIXTURES):
        for name in sorted(names):
            if not name.endswith((".cc", ".hh")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, FIXTURES)
            with open(path, encoding="utf-8") as handle:
                for lineno, line in enumerate(handle, 1):
                    for match in EXPECT_RE.finditer(line):
                        expected.add((rel, lineno, match.group(1)))
    return expected


def fixture_checks():
    expected = expected_findings()
    all_rules = {name for name, _doc, _fn in RULES}
    check(all_rules == {r for _f, _l, r in expected},
          "fixtures: every registered rule has a fixture marker")

    analyzer = Analyzer(FIXTURES)
    status = analyzer.run()
    actual = {(f.rel, f.line, f.rule) for f in analyzer.findings}

    for missing in sorted(expected - actual):
        print("     missing: %s:%d [%s]" % missing)
    for extra in sorted(actual - expected):
        print("     extra:   %s:%d [%s]" % extra)
    check(actual == expected,
          "fixtures: findings exactly match expect() markers")
    check(status == len({r for _f, _l, r in expected}),
          "fixtures: exit status is the failed-rule-class count")
    check(len(analyzer.findings) == len(expected),
          "fixtures: no duplicate findings")


# ------------------------------------------------------------- #
# 3. Output formats (through the real CLI).
# ------------------------------------------------------------- #

def output_checks():
    with tempfile.TemporaryDirectory() as tmp:
        sarif_path = os.path.join(tmp, "lint.sarif")
        proc = subprocess.run(
            [sys.executable, LINT, "--root", FIXTURES, "--json",
             "--sarif", sarif_path],
            capture_output=True, text=True)
        expected = expected_findings()
        check(proc.returncode == len({r for _f, _l, r in expected}),
              "cli: --json run exit status matches fixture rules")

        doc = json.loads(proc.stdout)
        got = {(f["file"], f["line"], f["rule"])
               for f in doc["findings"]}
        check(got == expected, "cli: --json findings match markers")
        check(set(doc["failed_rules"]) ==
              {r for _f, _l, r in expected},
              "cli: --json failed_rules complete")

        with open(sarif_path, encoding="utf-8") as handle:
            sarif = json.load(handle)
        check(sarif["version"] == "2.1.0", "sarif: version 2.1.0")
        run = sarif["runs"][0]
        check(run["tool"]["driver"]["name"] == "lumibench-lint",
              "sarif: driver name")
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        check(rule_ids == {name for name, _d, _f in RULES},
              "sarif: every rule described")
        got = set()
        for result in run["results"]:
            loc = result["locations"][0]["physicalLocation"]
            got.add((loc["artifactLocation"]["uri"],
                     loc["region"]["startLine"], result["ruleId"]))
        check(got == {(f.replace(os.sep, "/"), l, r)
                      for f, l, r in expected},
              "sarif: results match markers")

    proc = subprocess.run([sys.executable, LINT, "--list-rules"],
                          capture_output=True, text=True)
    check(proc.returncode == 0 and "lock-discipline" in proc.stdout,
          "cli: --list-rules")


# ------------------------------------------------------------- #
# 4. The real tree is clean.
# ------------------------------------------------------------- #

def real_tree_check():
    proc = subprocess.run([sys.executable, LINT, "--root", REPO],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stdout.write(proc.stdout)
    check(proc.returncode == 0,
          "real tree: tools/lint.py exits 0 on this checkout")


def main():
    tokenizer_checks()
    fixture_checks()
    output_checks()
    real_tree_check()
    if failures:
        print("\n%d check(s) FAILED" % len(failures))
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
