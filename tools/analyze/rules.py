"""The simulator-specific rules.

Seven rules ported from the regex engine (same names, same
semantics, now running over the tokenizer's literal-safe view), the
hot-path-container rule guarding the event loop's data layout, plus
two whole-program rules:

  layering         enforce the #include dependency matrix between
                   src/ subsystems;
  lock-discipline  every field named in a LUMI_GUARDED_BY must only
                   be touched inside a scope that acquired that
                   mutex -- the GCC-side twin of clang
                   -Wthread-safety.
"""

import os
import re

from .engine import rule

# --------------------------------------------------------------- #
# Shared scan sets (same meaning as the old regex engine).
# --------------------------------------------------------------- #

#: Directories making up the deterministic timing model.
MODEL_DIRS = ("src/gpu", "src/rt", "src/bvh", "src/check")
#: Code that serializes output: reports, traces, stats, metrics.
EMIT_DIRS = ("src/trace", "src/lumibench", "src/metrics",
             "src/analysis", "src/campaign")
EMIT_FILES = ("src/gpu/stat_bindings.cc",)

NONDET_PATTERNS = [
    (re.compile(r"\b(?:std::)?s?rand(?:_r)?\s*\("), "rand()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::(?:mt19937|minstd_rand|default_random_engine)"
                r"(?:_64)?\b"),
     "unseeded-by-convention std random engine"),
    (re.compile(r"(?<![\w.:])time\s*\(\s*(?:NULL|nullptr|0|&)"),
     "time()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\bstd::chrono::(?:system|steady|high_resolution)"
                r"_clock\b"),
     "std::chrono clock"),
]

STAT_STRUCTS = [
    # (header, struct name, registration function in stat_bindings.cc)
    ("src/gpu/stats.hh", "GpuStats", "registerGpuStats"),
    ("src/gpu/cache.hh", "CacheStats", "registerCacheStats"),
    ("src/gpu/dram.hh", "DramStats", "registerDramStats"),
    ("src/gpu/mem_system.hh", "RequesterStats",
     "registerRequesterStats"),
    ("src/gpu/mem_request.hh", "MemSystemStats",
     "registerMemSystemStats"),
    ("src/gpu/profile.hh", "SmCycleBuckets",
     "registerCycleBuckets"),
    ("src/gpu/profile.hh", "RtCycleBuckets",
     "registerCycleBuckets"),
]

FIELD_RE = re.compile(
    r"^\s*uint64_t\s+(\w+)\s*(?:\[[^\]]*\])?\s*=\s*(?:0|\{\})\s*;")

UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}]*?>>?\s+(\w+)\s*[;={]")


# --------------------------------------------------------------- #
# The seven ported rules.
# --------------------------------------------------------------- #

@rule("nondeterminism",
      "No wall-clock or libc/std randomness inside the timing model "
      "(src/gpu, src/rt, src/bvh, src/check); entropy comes from a "
      "seeded lumi::Rng so cycle counts stay bit-identical.")
def check_nondeterminism(ctx, report):
    for path in ctx.source_files(MODEL_DIRS):
        src = ctx.file(path)
        for lineno, line in enumerate(src.clean_lines, 1):
            for pattern, what in NONDET_PATTERNS:
                if pattern.search(line):
                    report(path, lineno,
                           "%s in the timing model; cycle counts "
                           "must be deterministic (use a seeded "
                           "lumi::Rng)" % what)


@rule("unordered-iter",
      "No range-for iteration over unordered containers in code that "
      "emits reports, traces or stats: hash order is byte-unstable "
      "across libstdc++ versions and ASLR.")
def check_unordered_iteration(ctx, report):
    # Pass 1: every identifier declared anywhere in src/ with an
    # unordered container type.
    names = set()
    for path in ctx.source_files(("src",)):
        for match in UNORDERED_DECL_RE.finditer(ctx.file(path).clean):
            names.add(match.group(1))
    # Pass 2: flag range-for over those identifiers (or over an
    # expression that is textually unordered) in emitting code.
    range_for = re.compile(r"for\s*\([^;()]*?:\s*([^)]*)\)")
    for path in ctx.source_files(EMIT_DIRS, EMIT_FILES):
        src = ctx.file(path)
        for lineno, line in enumerate(src.clean_lines, 1):
            match = range_for.search(line)
            if not match:
                continue
            expr = match.group(1)
            ident = re.findall(r"(\w+)\s*(?:\(\s*\))?\s*$", expr)
            hash_ordered = "unordered" in expr or (
                ident and ident[0] in names)
            if hash_ordered:
                report(path, lineno,
                       "iterating '%s' (hash order) while emitting "
                       "output; order must be deterministic" %
                       expr.strip())


def _struct_fields(text, struct_name):
    """uint64_t counter fields of @p struct_name (zero-initialized),
    scanning @p text (a comment-blanked code view)."""
    match = re.search(r"struct\s+%s\b" % struct_name, text)
    if not match:
        return None
    body_start = text.find("{", match.end())
    if body_start < 0:
        return None
    depth = 0
    i = body_start
    while i < len(text):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                break
        i += 1
    body = text[body_start:i]
    # Only top-level members: strip nested function bodies so locals
    # like `uint64_t denom = ...` are not mistaken for counters.
    top = []
    depth = 0
    for ch in body[1:]:
        if ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        elif depth == 0:
            top.append(ch)
    fields = []
    for line in "".join(top).splitlines():
        m = FIELD_RE.match(line)
        if m:
            fields.append(m.group(1))
    return fields


@rule("stat-coverage",
      "Every uint64_t counter field declared in the stats structs "
      "must be registered by address in src/gpu/stat_bindings.cc, so "
      "run reports can never silently drop a counter.")
def check_stat_coverage(ctx, report):
    bindings_rel = "src/gpu/stat_bindings.cc"
    if not ctx.exists(bindings_rel):
        return
    bindings_path = os.path.join(ctx.root, bindings_rel)
    registered = set(
        re.findall(r"&s->(\w+)", ctx.file(bindings_path).clean))
    for rel, struct, func in STAT_STRUCTS:
        if not ctx.exists(rel):
            continue
        header = os.path.join(ctx.root, rel)
        fields = _struct_fields(ctx.file(header).clean, struct)
        if fields is None:
            report(header, 1, "struct %s not found" % struct)
            continue
        for field in fields:
            if field not in registered:
                report(header, 1,
                       "%s::%s is never registered in %s() "
                       "(src/gpu/stat_bindings.cc); run reports "
                       "would silently drop it" %
                       (struct, field, func))


@rule("no-bare-assert",
      "src/gpu and src/check use LUMI_CHECK instead of assert(): "
      "checks must honor count mode, feed the violation counters, "
      "and compile out with -DLUMI_CHECKS=OFF.")
def check_no_bare_assert(ctx, report):
    pattern = re.compile(r"(?<![\w.])assert\s*\(")
    for path in ctx.source_files(("src/gpu", "src/check")):
        src = ctx.file(path)
        for lineno, line in enumerate(src.clean_lines, 1):
            if pattern.search(line) and "static_assert" not in line:
                report(path, lineno,
                       "use LUMI_CHECK instead of assert() in the "
                       "model: it honors count mode, feeds the "
                       "violation stats, and compiles out with "
                       "-DLUMI_CHECKS=OFF")


@rule("campaign-sweep",
      "Bench binaries must not hand-roll workload loops with direct "
      "runWorkload()/runCompute() calls; sweeps go through the "
      "campaign engine (bench_util.hh runAll/runJobs).")
def check_campaign_sweep(ctx, report):
    pattern = re.compile(r"\brun(?:Workload|Compute)\s*\(")
    bench_dir = os.path.join(ctx.root, "bench")
    if not os.path.isdir(bench_dir):
        return
    for name in sorted(os.listdir(bench_dir)):
        if not name.endswith(".cc"):
            continue
        path = os.path.join(bench_dir, name)
        src = ctx.file(path)
        for lineno, line in enumerate(src.clean_lines, 1):
            if pattern.search(line):
                report(path, lineno,
                       "direct runWorkload()/runCompute() in a bench "
                       "binary; route the sweep through bench_util "
                       "runAll()/runJobs() (campaign engine) so it "
                       "gets LUMI_JOBS parallelism, retries and the "
                       "result cache")


@rule("cache-access",
      "Outside the MemSystem implementation, no src/ code may call "
      "Cache::probe/writeProbe/peek/fill directly; every access "
      "flows through the issueRead/issueWrite ports so MSHR and "
      "port accounting stay conserved.")
def check_cache_access(ctx, report):
    # Method calls only (`.` or `->` receiver): free fill()/probe()
    # functions and std::fill never match.
    pattern = re.compile(
        r"(?:\.|->)\s*(probe|writeProbe|peek|fill)\s*\(")
    allowed_files = ("src/gpu/mem_system.cc", "src/gpu/cache.cc",
                     "src/gpu/cache.hh")
    for path in ctx.source_files(("src",)):
        rel = os.path.relpath(path, ctx.root)
        if rel in allowed_files:
            continue
        src = ctx.file(path)
        for lineno, line in enumerate(src.clean_lines, 1):
            match = pattern.search(line)
            if not match:
                continue
            report(path, lineno,
                   "direct Cache::%s() outside src/gpu/"
                   "mem_system.cc; go through MemSystem::issueRead/"
                   "issueWrite so MSHR and port accounting stay "
                   "conserved" % match.group(1))


@rule("gpu-chrono",
      "src/gpu must not touch wall-clock facilities except through "
      "the sanctioned self-profiling helper src/gpu/host_profile.cc; "
      "host timing in the model invites observer effects.")
def check_gpu_chrono(ctx, report):
    pattern = re.compile(r"std::chrono\b|#\s*include\s*<chrono>"
                         r"|\bclock_gettime\s*\(|\bgettimeofday\s*\(")
    # The one sanctioned clock user: the sampled host profiler.
    exempt = ("src/gpu/host_profile.hh", "src/gpu/host_profile.cc")
    for path in ctx.source_files(("src/gpu",)):
        rel = os.path.relpath(path, ctx.root)
        if rel in exempt:
            continue
        src = ctx.file(path)
        for lineno, line in enumerate(src.clean_lines, 1):
            if pattern.search(line):
                report(path, lineno,
                       "host clock in src/gpu outside the sanctioned "
                       "profiling helper (src/gpu/host_profile.cc); "
                       "wall time must never leak into model state")


@rule("hot-path-container",
      "No node-based std containers (std::map, std::unordered_map, "
      "std::list and friends) in src/gpu cycle-path code: "
      "per-element heap churn and pointer chasing dominate the "
      "event loop. Use the open-addressed flat tables "
      "(gpu/flat_map.hh), a vector with a head cursor, or an arena "
      "slot; deliberate cold-path uses are allowlisted with "
      "// lint:allow(hot-path-container).")
def check_hot_path_container(ctx, report):
    pattern = re.compile(
        r"\bstd::(map|multimap|unordered_map|unordered_multimap|"
        r"list|forward_list)\s*<")
    for path in ctx.source_files(("src/gpu",)):
        src = ctx.file(path)
        for lineno, line in enumerate(src.clean_lines, 1):
            match = pattern.search(line)
            if match:
                report(path, lineno,
                       "std::%s on the src/gpu cycle path; "
                       "node-based containers churn the allocator "
                       "and chase pointers every cycle -- use "
                       "FlatMap/FlatSet (gpu/flat_map.hh), a vector "
                       "with a head cursor, or an arena slot "
                       "(DESIGN.md \"Event scheduler\")" %
                       match.group(1))


# --------------------------------------------------------------- #
# layering: the #include dependency matrix.
# --------------------------------------------------------------- #

#: Allowed dependencies between src/ subsystems (self always
#: allowed). The partial order, lowest first:
#:   math < geometry < scene < bvh            (geometry stack)
#:   trace < check                            (observability stack)
#:   ... < gpu < rt < metrics < analysis      (model + analysis)
#:   compute sits just above rt (SIMT kernels on the gpu core; the
#:   rtq family reuses rt's shader/pipeline vocabulary)
#:   lumibench (runner/report/query) sees everything below it;
#:   campaign (the engine) sits on top and may also use lumibench.
#: Key guarantee: the timing model (gpu/rt) can never reach up into
#: campaign, lumibench or analysis, so nothing in the model can
#: depend on how runs are orchestrated or reported.
LAYER_DEPS = {
    "math": set(),
    "geometry": {"math"},
    "scene": {"geometry", "math"},
    "bvh": {"math", "geometry", "scene"},
    "trace": set(),
    "check": {"trace"},
    "gpu": {"math", "geometry", "scene", "bvh", "trace", "check"},
    "rt": {"math", "geometry", "scene", "bvh", "trace", "check",
           "gpu"},
    "compute": {"math", "geometry", "scene", "bvh", "trace",
                "check", "gpu", "rt"},
    "metrics": {"math", "geometry", "scene", "bvh", "trace",
                "check", "gpu", "rt"},
    "analysis": {"math", "geometry", "scene", "bvh", "trace",
                 "check", "gpu", "rt", "metrics"},
    "lumibench": {"math", "geometry", "scene", "bvh", "trace",
                  "check", "gpu", "rt", "compute", "metrics",
                  "analysis"},
    "campaign": {"math", "geometry", "scene", "bvh", "trace",
                 "check", "gpu", "rt", "compute", "metrics",
                 "analysis", "lumibench"},
}


@rule("layering",
      "src/ subsystems may only #include downward along the "
      "dependency matrix (math -> geometry/scene -> bvh -> gpu -> "
      "rt -> ... -> lumibench -> campaign); in particular the "
      "timing model (src/gpu, src/rt) may never include campaign, "
      "lumibench or analysis headers.")
def check_layering(ctx, report):
    for path in ctx.source_files(("src",)):
        rel = os.path.relpath(path, ctx.root)
        parts = rel.split(os.sep)
        if len(parts) < 3 or parts[0] != "src":
            continue
        layer = parts[1]
        allowed = LAYER_DEPS.get(layer)
        if allowed is None:
            # A new subsystem must be added to the matrix before it
            # can include anything.
            allowed = set()
        src = ctx.file(path)
        for token in src.tokens:
            if token.kind != "include":
                continue
            target = token.text
            if not target.startswith('"'):
                continue  # system headers are not layered
            inner = target.strip('"')
            dep = inner.split("/", 1)[0] if "/" in inner else None
            if dep is None or dep not in LAYER_DEPS:
                continue
            if dep == layer or dep in allowed:
                continue
            report(path, token.line,
                   "src/%s may not include \"%s\": the layering "
                   "matrix allows %s -> {%s} only (see "
                   "tools/analyze/rules.py LAYER_DEPS / DESIGN.md "
                   "\"Static analysis\")" %
                   (layer, inner, layer,
                    ", ".join(sorted(allowed)) or "nothing"))


# --------------------------------------------------------------- #
# lock-discipline: the GCC-side twin of clang -Wthread-safety.
# --------------------------------------------------------------- #

_LOCK_TYPES = frozenset(("MutexLock", "lock_guard", "unique_lock",
                         "scoped_lock", "shared_lock"))
_FUNC_PRECEDERS = frozenset((")", "]", "const", "noexcept",
                             "override", "final", "mutable", "try",
                             "else", "do"))
_TYPE_KEYWORDS = frozenset(("class", "struct", "union", "enum"))


def _guarded_fields(src):
    """(field, mutex, line) triples declared in @p src via
    LUMI_GUARDED_BY / LUMI_PT_GUARDED_BY."""
    out = []
    toks = src.tokens
    for i, token in enumerate(toks):
        if token.kind != "id" or token.text not in (
                "LUMI_GUARDED_BY", "LUMI_PT_GUARDED_BY"):
            continue
        # Mutex: last identifier of the macro argument.
        mutex = None
        j = i + 1
        if j < len(toks) and toks[j].text == "(":
            depth = 1
            j += 1
            while j < len(toks) and depth > 0:
                if toks[j].text == "(":
                    depth += 1
                elif toks[j].text == ")":
                    depth -= 1
                elif toks[j].kind == "id":
                    mutex = toks[j].text
                j += 1
        # Field: identifier before the macro, skipping an array
        # extent ([...]) if present.
        k = i - 1
        if k >= 0 and toks[k].text == "]":
            depth = 1
            k -= 1
            while k >= 0 and depth > 0:
                if toks[k].text == "]":
                    depth += 1
                elif toks[k].text == "[":
                    depth -= 1
                k -= 1
        if k >= 0 and toks[k].kind == "id" and mutex:
            out.append((toks[k].text, mutex, token.line))
    return out


def _last_ident_of_first_arg(toks, open_paren):
    """Last identifier of the first argument in toks after the
    opening paren index (handles `s.mutex`, `this->mutex_`)."""
    depth = 1
    j = open_paren + 1
    last = None
    while j < len(toks) and depth > 0:
        text = toks[j].text
        if text == "(":
            depth += 1
        elif text == ")":
            depth -= 1
        elif text == "," and depth == 1:
            break
        elif toks[j].kind == "id" and depth == 1:
            last = text
        j += 1
    return last


def _check_file_discipline(src, guarded, report, path):
    """Scan @p src's function bodies for unlocked accesses to the
    fields in @p guarded (field -> mutex)."""
    toks = src.tokens
    n = len(toks)
    # Brace stack entries: [kind, raii_acquisitions]. Manual
    # mutex.lock() acquisitions live in `manual` until .unlock() or
    # the enclosing function closes.
    stack = []
    func_depth = []  # stack indices where a function body opened
    manual = []      # (mutex, stack_depth_of_function)

    def inside_function():
        return bool(func_depth)

    def held():
        have = set(m for m, _ in manual)
        for entry in stack:
            have |= entry[1]
        return have

    i = 0
    stmt_start = 0  # token index where the current statement began
    while i < n:
        token = toks[i]
        text = token.text

        if text == "{":
            run = [t.text for t in toks[stmt_start:i]]
            if any(k in run for k in _TYPE_KEYWORDS):
                kind = "type"
            elif "namespace" in run:
                kind = "ns"
            elif run and run[-1] in _FUNC_PRECEDERS:
                kind = "func"
            elif not stack or stack[-1][0] in ("type", "ns"):
                kind = "other"
            else:
                kind = "block"
            acq = set()
            if kind == "func":
                # Capability annotations on the signature count as
                # held for the whole body.
                for k, word in enumerate(run):
                    if word in ("LUMI_REQUIRES", "LUMI_ACQUIRE",
                                "LUMI_RELEASE"):
                        # find the ids inside the following parens
                        for w in run[k + 1:]:
                            if w == ")":
                                break
                            if w not in ("(", ",", "::"):
                                acq.add(w)
                    if word == "LUMI_NO_THREAD_SAFETY_ANALYSIS":
                        kind = "func-skip"
            stack.append([kind, acq])
            if kind in ("func", "func-skip"):
                func_depth.append(len(stack))
            stmt_start = i + 1
            i += 1
            continue

        if text == "}":
            if stack:
                closing = stack.pop()
                if closing[0] in ("func", "func-skip"):
                    func_depth.pop()
                    # Manual locks never outlive their function.
                    manual[:] = [(m, d) for m, d in manual
                                 if d <= len(stack)]
            stmt_start = i + 1
            i += 1
            continue

        if text == ";":
            stmt_start = i + 1
            i += 1
            continue

        if not inside_function() or token.kind != "id":
            i += 1
            continue

        skip = any(s[0] == "func-skip" for s in stack)

        # RAII guard declaration: MutexLock l(mutex_); or
        # std::lock_guard<std::mutex> l(s.mutex);
        if text in _LOCK_TYPES:
            j = i + 1
            if j < n and toks[j].text == "<":
                depth = 1
                j += 1
                while j < n and depth > 0:
                    if toks[j].text == "<":
                        depth += 1
                    elif toks[j].text == ">":
                        depth -= 1
                    j += 1
            if j < n and toks[j].kind == "id":
                j += 1
                if j < n and toks[j].text == "(":
                    mutex = _last_ident_of_first_arg(toks, j)
                    if mutex and stack:
                        stack[-1][1].add(mutex)
            i += 1
            continue

        # Manual lock()/unlock() on a known mutex name.
        if text in ("lock", "unlock", "try_lock") and i >= 2 and \
                toks[i - 1].text in (".", "->") and \
                toks[i - 2].kind == "id" and \
                i + 1 < n and toks[i + 1].text == "(":
            mutex = toks[i - 2].text
            if text == "unlock":
                for k in range(len(manual) - 1, -1, -1):
                    if manual[k][0] == mutex:
                        del manual[k]
                        break
            else:
                manual.append((mutex, len(stack)))
            i += 2
            continue

        # Guarded-field access?
        mutex = guarded.get(text)
        if mutex is not None and not skip:
            # A call f(...) is a function sharing the name, not a
            # field access. Member declarations are not accesses:
            # either we are outside any function (class at file
            # scope) or the innermost scope is a type body (a local
            # struct like campaign.cc's IoState).
            is_call = i + 1 < n and toks[i + 1].text == "("
            in_decl = bool(stack) and stack[-1][0] == "type"
            if not is_call and not in_decl and mutex not in held():
                report(path, token.line,
                       "'%s' is LUMI_GUARDED_BY(%s) but this scope "
                       "never acquires it (no MutexLock/lock_guard "
                       "of %s, no %s.lock(), and the function is "
                       "not LUMI_REQUIRES(%s)); clang "
                       "-Wthread-safety would reject this build" %
                       (text, mutex, mutex, mutex, mutex))
        i += 1


@rule("lock-discipline",
      "Every field annotated LUMI_GUARDED_BY(m) may only be touched "
      "inside a scope that acquired m (RAII guard, m.lock(), or a "
      "LUMI_REQUIRES(m) function); keeps GCC builds as honest as "
      "clang -Wthread-safety ones.")
def check_lock_discipline(ctx, report):
    # Group files by (directory, stem): a class declared in x.hh is
    # implemented in x.cc, so the pair shares one guarded-field map.
    groups = {}
    for path in ctx.source_files(("src",)):
        stem = os.path.splitext(path)[0]
        groups.setdefault(stem, []).append(path)
    for stem in sorted(groups):
        paths = sorted(groups[stem])
        guarded = {}
        for path in paths:
            for field, mutex, _line in _guarded_fields(
                    ctx.file(path)):
                guarded[field] = mutex
        if not guarded:
            continue
        for path in paths:
            _check_file_discipline(ctx.file(path), guarded, report,
                                   path)
