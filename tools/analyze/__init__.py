"""Token-level static analysis for the LumiBench tree.

The package behind tools/lint.py:

  tokens.py   A C++ tokenizer that understands //, /* */, string,
              char and raw-string literals, digit separators and
              #include targets, plus code_view() -- a comment- and
              literal-blanked rendition of the source that preserves
              byte offsets and line structure for regex rules.
  engine.py   The rule framework: per-file and whole-program rules,
              finding collection, `// lint:allow(<rule>)`
              suppression, text / --json / SARIF output.
  rules.py    The simulator-specific rules themselves: the seven
              determinism/accounting rules plus the whole-program
              `layering` and `lock-discipline` rules.
"""

from .engine import Analyzer, Finding, RULES

__all__ = ["Analyzer", "Finding", "RULES"]
