"""Rule framework for the LumiBench static analyzer.

An Analyzer walks the tree once, tokenizes each source file once
(tokens.py), and hands a shared AnalysisContext to every rule. Rules
report Findings; a finding on a line whose raw text carries
`// lint:allow(<rule>)` is suppressed at the framework level, so no
rule re-implements suppression.

Output formats: human text (path:line: [rule] message), --json (a
findings array plus a per-rule summary), and SARIF 2.1.0 for CI
annotation/artifact upload. The exit status stays what it always
was: the number of rule classes with at least one finding.
"""

import json
import os
import re

from . import tokens as tok

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")

#: (name, register_order) -> rule function. Populated by @rule.
RULES = []


def rule(name, doc):
    """Decorator registering a rule. The function receives
    (ctx, report) where report(path, line, message) files a finding
    attributed to the rule."""

    def wrap(fn):
        RULES.append((name, doc, fn))
        return fn

    return wrap


class Finding:
    __slots__ = ("path", "rel", "line", "rule", "message")

    def __init__(self, path, rel, line, rule_name, message):
        self.path = path
        self.rel = rel
        self.line = line
        self.rule = rule_name
        self.message = message

    def text(self):
        return "%s:%d: [%s] %s" % (self.rel, self.line, self.rule,
                                   self.message)

    def as_dict(self):
        return {
            "file": self.rel,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
        }


class SourceFile:
    """One tokenized file: raw lines for suppression comments and
    messages, clean lines (comments/literals blanked, byte-aligned)
    for regex rules, the token stream for token rules."""

    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.raw_lines = text.splitlines()
        self.tokens = tok.tokenize(text)
        self.clean = tok.code_view(text, self.tokens)
        self.clean_lines = self.clean.splitlines()

    def allowed(self, lineno, rule_name):
        if 1 <= lineno <= len(self.raw_lines):
            match = ALLOW_RE.search(self.raw_lines[lineno - 1])
            return (match is not None and
                    match.group(1) == rule_name)
        return False


class AnalysisContext:
    """Shared per-run state: the root plus a tokenized-file cache."""

    def __init__(self, root):
        self.root = root
        self._cache = {}

    def file(self, path):
        entry = self._cache.get(path)
        if entry is None:
            with open(path, encoding="utf-8",
                      errors="replace") as handle:
                entry = SourceFile(path, handle.read())
            self._cache[path] = entry
        return entry

    def exists(self, rel):
        return os.path.exists(os.path.join(self.root, rel))

    def source_files(self, subdirs, extra_files=(), exts=(".cc",
                                                          ".hh")):
        """Sorted .cc/.hh paths under @p subdirs (missing directories
        contribute nothing, so fixture trees and partial checkouts
        analyze cleanly)."""
        found = []
        for sub in subdirs:
            base = os.path.join(self.root, sub)
            for dirpath, _, names in os.walk(base):
                for name in sorted(names):
                    if name.endswith(exts):
                        found.append(os.path.join(dirpath, name))
        for rel in extra_files:
            path = os.path.join(self.root, rel)
            if os.path.exists(path):
                found.append(path)
        return sorted(found)


class Analyzer:
    def __init__(self, root):
        self.root = os.path.abspath(root)
        self.ctx = AnalysisContext(self.root)
        self.findings = []
        self.failed_rules = []

    def run(self, only=None):
        """Run every rule (or the @p only subset). Returns the exit
        status: the number of rule classes with findings."""
        # Rules are imported lazily so `import analyze` stays cheap.
        from . import rules as _rules  # noqa: F401  (registers RULES)

        for name, _doc, fn in RULES:
            if only and name not in only:
                continue
            before = len(self.findings)

            def report(path, lineno, message, _name=name):
                rel = os.path.relpath(path, self.root)
                try:
                    if self.ctx.file(path).allowed(lineno, _name):
                        return
                except OSError:
                    pass
                self.findings.append(
                    Finding(path, rel, lineno, _name, message))

            fn(self.ctx, report)
            if len(self.findings) > before:
                self.failed_rules.append(name)
        return len(self.failed_rules)

    def summary(self):
        counts = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self):
        return {
            "root": self.root,
            "findings": [f.as_dict() for f in self.findings],
            "summary": self.summary(),
            "failed_rules": list(self.failed_rules),
        }

    def to_sarif(self):
        """Minimal SARIF 2.1.0 document for CI artifact upload."""
        rule_meta = [{
            "id": name,
            "shortDescription": {"text": doc.strip().split("\n")[0]},
            "fullDescription": {"text": doc.strip()},
            "defaultConfiguration": {"level": "error"},
        } for name, doc, _fn in RULES]
        results = [{
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.rel.replace(os.sep, "/"),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": finding.line},
                },
            }],
        } for finding in self.findings]
        return {
            "$schema": ("https://raw.githubusercontent.com/oasis-tcs/"
                        "sarif-spec/master/Schemata/sarif-schema-"
                        "2.1.0.json"),
            "version": "2.1.0",
            "runs": [{
                "tool": {
                    "driver": {
                        "name": "lumibench-lint",
                        "informationUri":
                            "https://example.invalid/lumibench",
                        "rules": rule_meta,
                    },
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///" +
                                self.root.strip("/") + "/"},
                },
                "results": results,
            }],
        }

    def write_sarif(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_sarif(), handle, indent=2)
            handle.write("\n")
