"""A small C++ tokenizer for the lint rules.

The regex lint engine this replaces blanked comments and strings
with a hand-rolled scanner that had two real bugs: a char literal
holding a quote (`'"'`) opened a phantom string that swallowed the
rest of the file, and raw string literals (`R"(...)"`) were scanned
as ordinary strings, so a `)"` inside them tore the literal open and
rule patterns matched string *contents*. Tokenizing properly fixes
both for every rule at once (tests/lint_fixtures pins regressions
for each).

Tokens carry their byte span in the original text, so rules can work
on the token stream (layering, lock-discipline) or on code_view() --
the original text with comment bodies and literal contents blanked,
byte-for-byte aligned with the source so line/column arithmetic and
the existing regex rules keep working.

Token kinds:
  id        identifiers and keywords
  num       numeric literals (incl. 0x1F, 1'000'000, 1.5e-3)
  str       string literals, encoding prefixes and raw strings
            included ("...", u8"...", R"(...)", LR"x(...)x")
  char      character literals ('a', '\\'', '"')
  include   the target of an #include directive, text includes the
            delimiters ("gpu/gpu.hh" or <chrono>)
  pp        a preprocessor directive head (#define, #pragma, ...)
  punct     every other operator/punctuator character
"""

import bisect


class Token:
    __slots__ = ("kind", "text", "line", "col", "start", "end")

    def __init__(self, kind, text, line, col, start, end):
        self.kind = kind
        self.text = text
        self.line = line
        self.col = col
        self.start = start
        self.end = end

    def __repr__(self):
        return "Token(%s, %r, line=%d)" % (self.kind, self.text,
                                           self.line)


_RAW_PREFIXES = ("R", "u8R", "uR", "UR", "LR")
_STR_PREFIXES = ("u8", "u", "U", "L")

_ID_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_$")
_ID_CONT = _ID_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_NUM_CONT = _ID_CONT | frozenset(".'")


def _line_starts(text):
    starts = [0]
    for i, c in enumerate(text):
        if c == "\n":
            starts.append(i + 1)
    return starts


def tokenize(text):
    """Token stream of @p text; comments vanish, literals are one
    token each. Unterminated constructs consume to end of file
    rather than raising: lint must degrade, not crash."""
    tokens = []
    starts = _line_starts(text)

    def loc(i):
        line = bisect.bisect_right(starts, i)
        return line, i - starts[line - 1] + 1

    n = len(text)
    i = 0
    line_begin = True  # only whitespace seen since the line start
    while i < n:
        c = text[i]

        if c == "\n":
            line_begin = True
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        # Comments.
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            # A backslash-newline continues a // comment.
            j = i + 2
            while j < n:
                if text[j] == "\n":
                    back = j - 1
                    while back > i and text[back] == "\r":
                        back -= 1
                    if text[back] == "\\":
                        j += 1
                        continue
                    break
                j += 1
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            i = n if j < 0 else j + 2
            continue

        start = i
        ln, col = loc(i)

        # Preprocessor directives: capture #include targets so the
        # layering rule sees them (code_view blanks string bodies).
        if c == "#" and line_begin:
            j = i + 1
            while j < n and text[j] in " \t":
                j += 1
            d = j
            while j < n and text[j] in _ID_CONT:
                j += 1
            directive = text[d:j]
            tokens.append(Token("pp", "#" + directive, ln, col,
                                start, j))
            if directive == "include":
                while j < n and text[j] in " \t":
                    j += 1
                if j < n and text[j] in "<\"":
                    close = ">" if text[j] == "<" else '"'
                    nl = text.find("\n", j)
                    if nl < 0:
                        nl = n
                    k = text.find(close, j + 1, nl)
                    if k >= 0:
                        tln, tcol = loc(j)
                        tokens.append(Token("include",
                                            text[j:k + 1], tln,
                                            tcol, j, k + 1))
                        j = k + 1
            i = j
            line_begin = False
            continue
        line_begin = False

        # Identifiers -- and the raw/encoded string literals whose
        # prefix parses as one.
        if c in _ID_START:
            j = i + 1
            while j < n and text[j] in _ID_CONT:
                j += 1
            word = text[i:j]
            if j < n and text[j] == '"' and word in _RAW_PREFIXES:
                # Raw string: R"delim( ... )delim"
                k = j + 1
                while k < n and text[k] not in "(\n":
                    k += 1
                if k < n and text[k] == "(":
                    delim = text[j + 1:k]
                    close = ")" + delim + '"'
                    e = text.find(close, k + 1)
                    e = n if e < 0 else e + len(close)
                else:
                    e = k
                tokens.append(Token("str", text[i:e], ln, col,
                                    start, e))
                i = e
                continue
            if j < n and text[j] == '"' and word in _STR_PREFIXES:
                e = _scan_quoted(text, j, '"')
                tokens.append(Token("str", text[i:e], ln, col,
                                    start, e))
                i = e
                continue
            if j < n and text[j] == "'" and word in _STR_PREFIXES:
                e = _scan_quoted(text, j, "'")
                tokens.append(Token("char", text[i:e], ln, col,
                                    start, e))
                i = e
                continue
            tokens.append(Token("id", word, ln, col, start, j))
            i = j
            continue

        # Numbers (digit separators use ' -- consume them here so
        # they are never mistaken for char literals).
        if c in _DIGITS or (c == "." and i + 1 < n and
                            text[i + 1] in _DIGITS):
            j = i + 1
            while j < n:
                ch = text[j]
                if ch in _NUM_CONT:
                    if ch == "'" and not (j + 1 < n and
                                          text[j + 1] in _ID_CONT):
                        break
                    j += 1
                elif ch in "+-" and text[j - 1] in "eEpP":
                    j += 1
                else:
                    break
            tokens.append(Token("num", text[i:j], ln, col,
                                start, j))
            i = j
            continue

        if c == '"':
            e = _scan_quoted(text, i, '"')
            tokens.append(Token("str", text[i:e], ln, col,
                                start, e))
            i = e
            continue

        if c == "'":
            e = _scan_quoted(text, i, "'")
            tokens.append(Token("char", text[i:e], ln, col,
                                start, e))
            i = e
            continue

        tokens.append(Token("punct", c, ln, col, start, i + 1))
        i += 1

    return tokens


def _scan_quoted(text, i, quote):
    """End offset (past the close quote) of the literal at @p i."""
    n = len(text)
    j = i + 1
    while j < n:
        c = text[j]
        if c == "\\":
            j += 2
            continue
        if c == quote or c == "\n":
            # An unterminated literal stops at the newline so one
            # bad line cannot swallow the rest of the file.
            return j + 1 if c == quote else j
        j += 1
    return n


def code_view(text, tokens=None):
    """@p text with comment bodies and literal contents blanked.

    Byte-aligned with the original: newlines survive, every other
    blanked byte becomes a space, literal delimiters are kept (a
    string shows as `""`, a char literal as `''`), #include targets
    are kept verbatim so directive-matching regexes still work.
    Rules that grep for banned calls can never match inside a
    comment, string, char or raw-string literal.
    """
    if tokens is None:
        tokens = tokenize(text)
    out = [c if c == "\n" else " " for c in text]
    for token in tokens:
        if token.kind in ("str", "char"):
            out[token.start] = text[token.start]
            out[token.end - 1] = text[token.end - 1]
            # Keep a quote as the first visible delimiter even for
            # prefixed literals (u8"...": keep the `"`, blank `u8`).
            quote = '"' if token.kind == "str" else "'"
            qpos = text.find(quote, token.start, token.end)
            if qpos >= 0:
                out[qpos] = quote
        else:
            for k in range(token.start, token.end):
                if text[k] != "\n":
                    out[k] = text[k]
    return "".join(out)
