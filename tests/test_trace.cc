/**
 * @file
 * Tests for the observability layer: the event tracer (ring
 * wraparound, category gating, Chrome-trace serialization), the stat
 * registry, phase timers, run reports, and the hardened env parsing
 * — plus the no-observer-effect guarantee on a real workload.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "lumibench/run_report.hh"
#include "lumibench/runner.hh"
#include "trace/phase.hh"
#include "trace/stat_registry.hh"
#include "trace/trace.hh"

using namespace lumi;

namespace
{

std::string
tempPath(const char *name)
{
    return testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

/**
 * Quote-aware structural check: braces and brackets balance and
 * never go negative outside string literals.
 */
bool
balancedJson(const std::string &text)
{
    int braces = 0;
    int brackets = 0;
    bool inString = false;
    for (size_t i = 0; i < text.size(); i++) {
        char c = text[i];
        if (inString) {
            if (c == '\\')
                i++;
            else if (c == '"')
                inString = false;
            continue;
        }
        switch (c) {
          case '"': inString = true; break;
          case '{': braces++; break;
          case '}': braces--; break;
          case '[': brackets++; break;
          case ']': brackets--; break;
          default: break;
        }
        if (braces < 0 || brackets < 0)
            return false;
    }
    return braces == 0 && brackets == 0 && !inString;
}

RunOptions
tinyOptions()
{
    RunOptions options;
    options.params.width = 16;
    options.params.height = 16;
    options.params.samplesPerPixel = 1;
    options.sceneDetail = 0.1f;
    return options;
}

} // namespace

TEST(Tracer, RingWraparoundKeepsNewestOldestFirst)
{
    if (!Tracer::compiledIn())
        GTEST_SKIP() << "tracing compiled out";
    Tracer tracer(4);
    tracer.setMask(traceAllCategories);
    for (uint64_t i = 0; i < 10; i++)
        tracer.instant(TraceCategory::Sm, "tick", 0, i);

    EXPECT_EQ(tracer.emitted(TraceCategory::Sm), 10u);
    EXPECT_EQ(tracer.dropped(TraceCategory::Sm), 6u);
    std::vector<TraceEvent> events =
        tracer.events(TraceCategory::Sm);
    ASSERT_EQ(events.size(), 4u);
    for (size_t i = 0; i < events.size(); i++)
        EXPECT_EQ(events[i].start, 6u + i);
}

TEST(Tracer, MaskGatesPerCategory)
{
    if (!Tracer::compiledIn())
        GTEST_SKIP() << "tracing compiled out";
    Tracer tracer(16);
    tracer.setMask(traceBit(TraceCategory::Sm) |
                   traceBit(TraceCategory::Rt));
    EXPECT_TRUE(tracer.wants(TraceCategory::Sm));
    EXPECT_FALSE(tracer.wants(TraceCategory::Dram));

    tracer.instant(TraceCategory::Sm, "kept", 0, 1);
    tracer.instant(TraceCategory::Dram, "gated", 0, 2);
    tracer.span(TraceCategory::Cache, "gated", 0, 1, 5);

    EXPECT_EQ(tracer.emitted(TraceCategory::Sm), 1u);
    EXPECT_EQ(tracer.emitted(TraceCategory::Dram), 0u);
    EXPECT_EQ(tracer.emitted(TraceCategory::Cache), 0u);
    EXPECT_EQ(tracer.size(), 1u);

    tracer.setMask(0);
    tracer.instant(TraceCategory::Sm, "gated", 0, 3);
    EXPECT_EQ(tracer.emitted(TraceCategory::Sm), 1u);
}

TEST(Tracer, ParseCategorySpec)
{
    EXPECT_EQ(parseTraceCategories("all"), traceAllCategories);
    EXPECT_EQ(parseTraceCategories(""), traceAllCategories);
    EXPECT_EQ(parseTraceCategories("sm,rt"),
              traceBit(TraceCategory::Sm) |
                  traceBit(TraceCategory::Rt));
    // Unknown tokens warn but never add bits.
    EXPECT_EQ(parseTraceCategories("dram,bogus"),
              traceBit(TraceCategory::Dram));
}

TEST(Tracer, ChromeTraceJsonIsStructurallyValid)
{
    if (!Tracer::compiledIn())
        GTEST_SKIP() << "tracing compiled out";
    Tracer tracer(16);
    tracer.setMask(traceAllCategories);
    tracer.instant(TraceCategory::Cache, "l1_miss", 2, 100, "line",
                   0xdead, "kind", 3);
    tracer.span(TraceCategory::Rt, "rt_warp", 1, 50, 90, "kind", 0,
                "nodes", 12);
    tracer.span(TraceCategory::Sm, "warp", 0, 10, 200);

    std::string json = tracer.toJson();
    EXPECT_TRUE(balancedJson(json));
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":40"), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"cache\""), std::string::npos);
    EXPECT_NE(json.find("\"nodes\":12"), std::string::npos);

    std::string path = tempPath("trace_test.json");
    ASSERT_TRUE(tracer.writeChromeTrace(path));
    EXPECT_EQ(slurp(path), json);
    std::remove(path.c_str());
}

TEST(Tracer, SortedEventsMergeCategoriesByCycle)
{
    if (!Tracer::compiledIn())
        GTEST_SKIP() << "tracing compiled out";
    Tracer tracer(8);
    tracer.setMask(traceAllCategories);
    tracer.instant(TraceCategory::Dram, "late", 0, 30);
    tracer.instant(TraceCategory::Sm, "early", 0, 10);
    tracer.instant(TraceCategory::Cache, "mid", 0, 20);

    std::vector<TraceEvent> events = tracer.sortedEvents();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].start, 10u);
    EXPECT_EQ(events[1].start, 20u);
    EXPECT_EQ(events[2].start, 30u);
}

TEST(StatRegistry, RejectsDuplicateNames)
{
    StatRegistry registry;
    uint64_t a = 1;
    uint64_t b = 2;
    EXPECT_TRUE(registry.addCounter("sm00.l1d.misses", &a));
    EXPECT_FALSE(registry.addCounter("sm00.l1d.misses", &b));
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_DOUBLE_EQ(registry.value("sm00.l1d.misses"), 1.0);
}

TEST(StatRegistry, FormulaAndDistributionEvaluateLive)
{
    StatRegistry registry;
    uint64_t hits = 90;
    uint64_t total = 100;
    registry.addCounter("hits", &hits);
    registry.addFormula("hit_rate", [&] {
        return static_cast<double>(hits) / total;
    });
    StatDistribution latency;
    latency.record(10.0);
    latency.record(30.0);
    registry.addDistribution("latency", &latency);

    EXPECT_DOUBLE_EQ(registry.value("hit_rate"), 0.9);
    hits = 50; // live pointer: no re-registration needed
    EXPECT_DOUBLE_EQ(registry.value("hit_rate"), 0.5);
    EXPECT_DOUBLE_EQ(registry.value("latency"), 20.0);

    std::string json = registry.toJson();
    EXPECT_TRUE(balancedJson(json));
    EXPECT_NE(json.find("\"hit_rate\""), std::string::npos);
    EXPECT_NE(json.find("\"mean\":20"), std::string::npos);
    // names() is sorted, so the dump is deterministic.
    std::vector<std::string> names = registry.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "hit_rate");
    EXPECT_EQ(names[1], "hits");
    EXPECT_EQ(names[2], "latency");
}

TEST(PhaseProfiler, ScopedTimersAccumulateByName)
{
    PhaseProfiler profiler;
    {
        PhaseProfiler::Scoped scoped(profiler, "build");
    }
    {
        PhaseProfiler::Scoped scoped(profiler, "build");
    }
    {
        PhaseProfiler::Scoped scoped(profiler, "simulate");
    }
    ASSERT_EQ(profiler.timings().size(), 2u);
    EXPECT_EQ(profiler.timings()[0].name, "build");
    EXPECT_EQ(profiler.timings()[0].count, 2u);
    EXPECT_EQ(profiler.timings()[1].name, "simulate");
    EXPECT_GE(profiler.totalSeconds(), 0.0);
}

TEST(Runner, TracingHasNoObserverEffect)
{
    Workload workload{SceneId::BUNNY, ShaderKind::AmbientOcclusion};

    RunOptions plain = tinyOptions();
    WorkloadResult off = runWorkload(workload, plain);
    EXPECT_EQ(off.trace, nullptr);

    RunOptions traced = tinyOptions();
    traced.traceMask = traceAllCategories;
    WorkloadResult on = runWorkload(workload, traced);
    ASSERT_NE(on.trace, nullptr);
    if (Tracer::compiledIn()) {
        EXPECT_GT(on.trace->size(), 0u);
    }

    EXPECT_EQ(off.stats.cycles, on.stats.cycles);
    EXPECT_EQ(off.stats.threadInstructions,
              on.stats.threadInstructions);
    EXPECT_EQ(off.stats.raysTraced, on.stats.raysTraced);
    EXPECT_EQ(off.dram.accesses, on.dram.accesses);
}

TEST(Runner, ResultCarriesStatsPhasesAndTrace)
{
    Workload workload{SceneId::BUNNY, ShaderKind::AmbientOcclusion};
    RunOptions options = tinyOptions();
    options.traceMask = traceAllCategories;
    WorkloadResult result = runWorkload(workload, options);

    EXPECT_TRUE(balancedJson(result.statsJson));
    EXPECT_NE(result.statsJson.find("\"gpu.cycles\""),
              std::string::npos);
    EXPECT_NE(result.statsJson.find("\"sm00.l1d.misses\""),
              std::string::npos);
    EXPECT_NE(result.statsJson.find("\"dram.accesses\""),
              std::string::npos);

    std::vector<std::string> expected = {"scene_build", "bvh_build",
                                         "simulate", "analysis"};
    ASSERT_EQ(result.phases.size(), expected.size());
    for (size_t i = 0; i < expected.size(); i++)
        EXPECT_EQ(result.phases[i].name, expected[i]);

    // At least the four hardware categories must have events.
    if (Tracer::compiledIn()) {
        EXPECT_GT(result.trace->emitted(TraceCategory::Sm), 0u);
        EXPECT_GT(result.trace->emitted(TraceCategory::Rt), 0u);
        EXPECT_GT(result.trace->emitted(TraceCategory::Cache), 0u);
        EXPECT_GT(result.trace->emitted(TraceCategory::Dram), 0u);
    }
}

TEST(RunReport, RoundTripsThroughDisk)
{
    Workload workload{SceneId::BUNNY, ShaderKind::AmbientOcclusion};
    RunOptions options = tinyOptions();
    WorkloadResult result = runWorkload(workload, options);

    std::vector<WorkloadResult> results;
    results.push_back(result);
    std::string path = tempPath("report_test.json");
    ASSERT_TRUE(writeRunReport(path, results, options));

    // Golden check: file content is exactly the serializer output.
    std::string body = slurp(path);
    EXPECT_EQ(body, runReportJson(results, options));
    std::remove(path.c_str());

    EXPECT_TRUE(balancedJson(body));
    EXPECT_NE(body.find("\"schema\":\"lumibench-run-report-v1\""),
              std::string::npos);
    EXPECT_NE(body.find("\"id\":\"BUNNY_AO\""), std::string::npos);
    EXPECT_NE(body.find("\"phases\""), std::string::npos);
    EXPECT_NE(body.find("\"gpu.cycles\""), std::string::npos);
    EXPECT_NE(body.find(configFingerprint(options.config)),
              std::string::npos);
}

TEST(RunReport, FingerprintTracksTimingFields)
{
    GpuConfig mobile = GpuConfig::mobile();
    EXPECT_EQ(configFingerprint(mobile), configFingerprint(mobile));
    GpuConfig tweaked = mobile;
    tweaked.l2SizeBytes *= 2;
    EXPECT_NE(configFingerprint(mobile), configFingerprint(tweaked));
    EXPECT_NE(configFingerprint(GpuConfig::mobile()),
              configFingerprint(GpuConfig::desktop()));
}

TEST(RunOptions, FromEnvRejectsMalformedValues)
{
    setenv("LUMI_QUICK", "1", 1);
    setenv("LUMI_RES", "abc", 1);
    setenv("LUMI_SPP", "-3", 1);
    setenv("LUMI_DETAIL", "nope", 1);
    RunOptions options = RunOptions::fromEnv();
    // Malformed values fall back to the quick-run defaults.
    EXPECT_EQ(options.params.width, 32);
    EXPECT_EQ(options.params.height, 32);
    EXPECT_EQ(options.params.samplesPerPixel, 1);
    EXPECT_FLOAT_EQ(options.sceneDetail, 0.25f);

    setenv("LUMI_RES", "48", 1);
    setenv("LUMI_SPP", "2", 1);
    options = RunOptions::fromEnv();
    EXPECT_EQ(options.params.width, 48);
    EXPECT_EQ(options.params.samplesPerPixel, 2);

    unsetenv("LUMI_QUICK");
    unsetenv("LUMI_RES");
    unsetenv("LUMI_SPP");
    unsetenv("LUMI_DETAIL");
}

TEST(RunOptions, FromEnvParsesTraceCategories)
{
    setenv("LUMI_TRACE", "sm,dram", 1);
    RunOptions options = RunOptions::fromEnv();
    EXPECT_EQ(options.traceMask, traceBit(TraceCategory::Sm) |
                                     traceBit(TraceCategory::Dram));
    unsetenv("LUMI_TRACE");
    options = RunOptions::fromEnv();
    EXPECT_EQ(options.traceMask, 0u);
}
