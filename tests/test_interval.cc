/**
 * @file
 * Interval-sampler tests: the grid-sampling mechanics, the canonical
 * JSON round trip (constant-series compaction included), the
 * observer-effect-zero contract (sampling changes nothing about the
 * simulation), run-to-run determinism of the series, and the result
 * cache carrying the series byte-identically.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/cache.hh"
#include "campaign/campaign.hh"
#include "lumibench/run_report.hh"
#include "lumibench/runner.hh"
#include "lumibench/workload.hh"
#include "trace/interval.hh"
#include "trace/json_read.hh"

using namespace lumi;

namespace
{

RunOptions
quickOptions()
{
    RunOptions options;
    options.params.width = 16;
    options.params.height = 16;
    options.sceneDetail = 0.15f;
    return options;
}

Workload
quickWorkload()
{
    return {SceneId::BUNNY, ShaderKind::AmbientOcclusion};
}

/** Unique fresh temp directory under the system temp root. */
std::string
freshDir(const char *tag)
{
    static std::atomic<int> counter{0};
    std::string path =
        (std::filesystem::temp_directory_path() /
         (std::string("lumi_interval_") + tag + "_" +
          std::to_string(::getpid()) + "_" +
          std::to_string(counter.fetch_add(1))))
            .string();
    std::filesystem::remove_all(path);
    return path;
}

} // namespace

TEST(IntervalSampler, SamplesOnGridCrossings)
{
    IntervalSampler sampler(100);
    uint64_t work = 0;
    uint64_t idle = 7; // never changes: must compact to "constant"
    sampler.registry().addCounter("test.work", &work);
    sampler.registry().addCounter("test.idle", &idle);

    sampler.maybeSample(0); // baseline
    work = 10;
    sampler.maybeSample(50); // below the next grid point: no sample
    work = 25;
    sampler.maybeSample(100);
    work = 60;
    // An event-accelerated jump across two grid points yields one
    // sample at the landing cycle.
    sampler.maybeSample(350);
    work = 61;
    sampler.maybeSample(350); // same cycle: idempotent
    work = 80;
    sampler.sampleFinal(371);

    const IntervalSeries &series = sampler.series();
    EXPECT_EQ(series.interval, 100u);
    ASSERT_EQ(series.cycles,
              (std::vector<uint64_t>{0, 100, 350, 371}));
    int work_idx = series.seriesIndex("test.work");
    int idle_idx = series.seriesIndex("test.idle");
    ASSERT_GE(work_idx, 0);
    ASSERT_GE(idle_idx, 0);
    EXPECT_EQ(series.seriesIndex("test.missing"), -1);
    EXPECT_EQ(series.values[work_idx],
              (std::vector<uint64_t>{0, 25, 60, 80}));
    EXPECT_EQ(series.values[idle_idx],
              (std::vector<uint64_t>{7, 7, 7, 7}));
    // Deltas: delta at sample 0 is the cumulative value itself.
    EXPECT_EQ(series.delta(work_idx, 0), 0u);
    EXPECT_EQ(series.delta(work_idx, 1), 25u);
    EXPECT_EQ(series.delta(work_idx, 2), 35u);
    EXPECT_EQ(series.delta(work_idx, 3), 20u);
}

TEST(IntervalSeries, JsonRoundTripIsByteIdentical)
{
    IntervalSampler sampler(10);
    uint64_t varying = 0;
    uint64_t constant = 1234567890123456789ull;
    sampler.registry().addCounter("b.varying", &varying);
    sampler.registry().addCounter("a.constant", &constant);
    for (uint64_t c = 0; c <= 30; c += 10) {
        varying = c * 3;
        sampler.maybeSample(c);
    }

    std::string cold = sampler.series().toJson();
    // The never-changing counter compacts into the constant map.
    EXPECT_NE(cold.find("\"constant\":{\"a.constant\":"
                        "1234567890123456789}"),
              std::string::npos);
    EXPECT_NE(cold.find("\"series\":{\"b.varying\":"),
              std::string::npos);

    JsonValue doc;
    ASSERT_TRUE(parseJson(cold, doc));
    IntervalSeries warm;
    ASSERT_TRUE(IntervalSeries::fromJson(doc, warm));
    EXPECT_EQ(warm.toJson(), cold);
    // The expanded form matches the original matrix exactly.
    ASSERT_EQ(warm.names, sampler.series().names);
    EXPECT_EQ(warm.values, sampler.series().values);
    EXPECT_EQ(warm.cycles, sampler.series().cycles);
}

TEST(IntervalSeries, FromJsonRejectsMalformedDocuments)
{
    auto parseSeries = [](const std::string &text) {
        JsonValue doc;
        EXPECT_TRUE(parseJson(text, doc));
        IntervalSeries out;
        return IntervalSeries::fromJson(doc, out);
    };
    // Series column shorter than the cycle grid.
    EXPECT_FALSE(parseSeries(
        "{\"interval\":10,\"cycles\":[10,20],"
        "\"series\":{\"a\":[1]},\"constant\":{}}"));
    // Missing cycles array entirely.
    EXPECT_FALSE(parseSeries(
        "{\"interval\":10,\"series\":{},\"constant\":{}}"));
}

TEST(Interval, SamplingHasZeroObserverEffect)
{
    Workload workload = quickWorkload();
    RunOptions plain = quickOptions();
    WorkloadResult baseline = runWorkload(workload, plain);

    // Any period — including one that samples every few cycles —
    // must leave cycles and every stat byte-identical.
    for (uint64_t interval : {64ull, 1000ull}) {
        RunOptions sampled = quickOptions();
        sampled.intervalStats = interval;
        WorkloadResult probed = runWorkload(workload, sampled);
        EXPECT_EQ(probed.stats.cycles, baseline.stats.cycles)
            << "interval " << interval;
        EXPECT_EQ(probed.statsJson, baseline.statsJson)
            << "interval " << interval;
        EXPECT_FALSE(probed.intervalSeries.empty());
    }
    EXPECT_TRUE(baseline.intervalSeries.empty());
}

TEST(Interval, FinalSampleMatchesEndOfRunStats)
{
    RunOptions options = quickOptions();
    options.intervalStats = 500;
    WorkloadResult result = runWorkload(quickWorkload(), options);

    const IntervalSeries &series = result.intervalSeries;
    ASSERT_FALSE(series.empty());
    size_t last = series.sampleCount() - 1;
    EXPECT_EQ(series.cycles[last], result.stats.cycles);
    int cycles_idx = series.seriesIndex("gpu.cycles");
    int rays_idx = series.seriesIndex("rt.rays_traced");
    ASSERT_GE(cycles_idx, 0);
    ASSERT_GE(rays_idx, 0);
    EXPECT_EQ(series.at(cycles_idx, last), result.stats.cycles);
    EXPECT_EQ(series.at(rays_idx, last), result.stats.raysTraced);
    // Cumulative columns never decrease.
    for (size_t s = 0; s < series.names.size(); s++) {
        for (size_t i = 1; i < series.sampleCount(); i++)
            EXPECT_LE(series.at(s, i - 1), series.at(s, i))
                << series.names[s];
    }
}

TEST(Interval, SeriesIsDeterministicAcrossRuns)
{
    RunOptions options = quickOptions();
    options.intervalStats = 250;
    WorkloadResult a = runWorkload(quickWorkload(), options);
    WorkloadResult b = runWorkload(quickWorkload(), options);
    EXPECT_EQ(a.intervalSeries.toJson(), b.intervalSeries.toJson());
}

TEST(Interval, CacheRoundTripsSeriesByteIdentically)
{
    RunOptions options = quickOptions();
    options.intervalStats = 500;
    campaign::Job job =
        campaign::Job::rayTracing(quickWorkload(), options);
    WorkloadResult cold = runWorkload(job.workload, options);
    std::string cold_report =
        runReportJson({cold}, job.options);

    std::string dir = freshDir("cache");
    std::filesystem::create_directories(dir);
    std::string path = dir + "/" + campaign::cacheKey(job);
    ASSERT_TRUE(campaign::writeCachedResult(path, job, cold));

    WorkloadResult warm;
    ASSERT_TRUE(campaign::readCachedResult(path, job, warm));
    EXPECT_EQ(warm.intervalSeries.toJson(),
              cold.intervalSeries.toJson());
    // The whole re-serialized report — series included — matches
    // the cold bytes, so warm campaign manifests never drift.
    EXPECT_EQ(runReportJson({warm}, job.options), cold_report);
    std::filesystem::remove_all(dir);
}

TEST(Interval, SamplingPeriodChangesCacheKey)
{
    RunOptions a = quickOptions();
    RunOptions b = quickOptions();
    b.intervalStats = 500;
    EXPECT_NE(campaign::cacheKey(campaign::Job::rayTracing(
                  quickWorkload(), a)),
              campaign::cacheKey(campaign::Job::rayTracing(
                  quickWorkload(), b)));
}

TEST(Interval, SelfProfiledRunsAreNotCacheable)
{
    RunOptions options = quickOptions();
    options.selfProfile = true;
    EXPECT_FALSE(campaign::cacheable(
        campaign::Job::rayTracing(quickWorkload(), options)));
    options.selfProfile = false;
    EXPECT_TRUE(campaign::cacheable(
        campaign::Job::rayTracing(quickWorkload(), options)));
}

TEST(HostProfile, ProfiledRunReportsComponents)
{
    RunOptions options = quickOptions();
    options.selfProfile = true;
    WorkloadResult result = runWorkload(quickWorkload(), options);
    const HostProfile &profile = result.hostProfile;
    ASSERT_FALSE(profile.empty());
    EXPECT_GT(profile.totalIterations, 0u);
    EXPECT_GT(profile.sampledIterations, 0u);
    EXPECT_GE(profile.totalIterations, profile.sampledIterations);
    double share = 0.0;
    for (const HostProfileComponent &component :
         profile.components) {
        EXPECT_GE(component.seconds, 0.0);
        share += component.share;
    }
    // Shares are fractions of the sampled loop time.
    EXPECT_GT(share, 0.0);
    EXPECT_LE(share, 1.0 + 1e-9);
    // Simulation results are untouched by the profiler.
    WorkloadResult baseline =
        runWorkload(quickWorkload(), quickOptions());
    EXPECT_EQ(result.statsJson, baseline.statsJson);
}
