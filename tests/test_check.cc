/**
 * @file
 * Tests for the invariant-checking layer (src/check).
 *
 * The corruption tests deliberately break simulator state through
 * test-peer backdoors and assert that the *right* LUMI_CHECK fires
 * in count-and-continue mode. The observer tests establish the other
 * half of the contract: on a healthy run no check fires, and neither
 * the check mode nor a repeated run changes a single reported bit.
 */

#include <gtest/gtest.h>

#include <string>

#include "check/check.hh"
#include "gpu/address_space.hh"
#include "gpu/cache.hh"
#include "gpu/dram.hh"
#include "gpu/mem_system.hh"
#include "gpu/rt_unit.hh"
#include "gpu/simt_core.hh"
#include "gpu/warp_context.hh"
#include "lumibench/runner.hh"
#include "trace/stat_registry.hh"

namespace lumi
{

/** Backdoor into WarpContext's private divergence stack. */
struct WarpContextTestPeer
{
    static void push(WarpContext &wc, uint32_t mask)
    {
        wc.pushMask(mask);
    }

    static void pop(WarpContext &wc) { wc.popMask(); }
};

/** Backdoor into Dram's private counter block. */
struct DramTestPeer
{
    static DramStats &stats(Dram &dram) { return dram.stats_; }
};

} // namespace lumi

using namespace lumi;

namespace
{

RunOptions
tinyOptions()
{
    RunOptions options;
    options.params.width = 16;
    options.params.height = 16;
    options.params.samplesPerPixel = 1;
    options.sceneDetail = 0.1f;
    return options;
}

bool
contains(const std::string &haystack, const char *needle)
{
    return haystack.find(needle) != std::string::npos;
}

} // namespace

// --- Satellite: CacheStats::writeMissRate -------------------------

TEST(CacheStatsTest, WriteMissRateGuardsZeroWrites)
{
    CacheStats stats;
    EXPECT_EQ(stats.writeMissRate(), 0.0);
}

TEST(CacheStatsTest, WriteMissRateMirrorsReadMissRate)
{
    CacheStats stats;
    stats.writes = 8;
    stats.writeMisses = 2;
    EXPECT_DOUBLE_EQ(stats.writeMissRate(), 0.25);
    stats.reads = 4;
    stats.readMisses = 3;
    EXPECT_DOUBLE_EQ(stats.readMissRate(), 0.75);
}

// --- Violation counters in the stats schema -----------------------

TEST(CheckStatsTest, ViolationCountersRegisterInEveryBuild)
{
    StatRegistry registry;
    registerCheckStats(registry);
    std::string json = registry.toJson();
    EXPECT_TRUE(contains(json, "check.violations.total"));
    EXPECT_TRUE(contains(json, "check.violations.simt"));
    EXPECT_TRUE(contains(json, "check.violations.sched"));
    EXPECT_TRUE(contains(json, "check.violations.cache"));
    EXPECT_TRUE(contains(json, "check.violations.dram"));
    EXPECT_TRUE(contains(json, "check.violations.rt"));
    EXPECT_TRUE(contains(json, "check.violations.mem"));
    EXPECT_TRUE(contains(json, "check.violations.profile"));
}

TEST(CheckStatsTest, SubsysNamesAreStable)
{
    EXPECT_STREQ(checkSubsysName(CheckSubsys::Simt), "simt");
    EXPECT_STREQ(checkSubsysName(CheckSubsys::Dram), "dram");
    EXPECT_STREQ(checkSubsysName(CheckSubsys::Mem), "mem");
}

#if LUMI_CHECKS_ENABLED

// --- Seeded corruption: the right check fires in count mode -------

TEST(CheckCorruptionTest, EmptyDivergenceMaskFiresSimt)
{
    checks::ScopedCountMode guard;
    WarpContext wc(nullptr, 7);
    WarpContextTestPeer::push(wc, 0);
    EXPECT_EQ(checks::violations(CheckSubsys::Simt), 1u);
    EXPECT_EQ(checks::total(), 1u);
    EXPECT_TRUE(contains(checks::lastMessage(),
                         "empty divergence mask"));
}

TEST(CheckCorruptionTest, EscapingDivergenceMaskFiresSimt)
{
    checks::ScopedCountMode guard;
    WarpContext wc(nullptr, 0, 4); // active mask 0xf
    WarpContextTestPeer::push(wc, 0x30u);
    EXPECT_EQ(checks::violations(CheckSubsys::Simt), 1u);
    EXPECT_TRUE(contains(checks::lastMessage(), "escapes"));
}

TEST(CheckCorruptionTest, UnmatchedPopFiresSimtAndSurvives)
{
    checks::ScopedCountMode guard;
    WarpContext wc(nullptr, 3);
    uint32_t mask_before = wc.activeMask();
    WarpContextTestPeer::pop(wc);
    EXPECT_EQ(checks::violations(CheckSubsys::Simt), 1u);
    EXPECT_TRUE(contains(checks::lastMessage(),
                         "empty divergence stack"));
    // Count mode survived the pop without clobbering the mask.
    EXPECT_EQ(wc.activeMask(), mask_before);
}

TEST(CheckCorruptionTest, UnreconvergedTakeFiresSimt)
{
    checks::ScopedCountMode guard;
    WarpContext wc(nullptr, 1);
    wc.alu(1);
    WarpContextTestPeer::push(wc, 1u);
    (void)wc.take();
    EXPECT_EQ(checks::violations(CheckSubsys::Simt), 1u);
    EXPECT_TRUE(contains(checks::lastMessage(), "unreconverged"));
}

TEST(CheckCorruptionTest, HealthyBranchFiresNothing)
{
    checks::ScopedCountMode guard;
    WarpContext wc(nullptr, 0);
    wc.branch([](int lane) { return lane % 2 == 0; },
              [&] { wc.alu(1); }, [&] { wc.sfu(1); });
    (void)wc.take();
    EXPECT_EQ(checks::total(), 0u);
}

TEST(CheckCorruptionTest, CacheCounterDriftFiresCache)
{
    checks::ScopedCountMode guard;
    Cache cache(1024, 128, 2, 10);
    cache.stats.reads += 3; // drift: reads no one classified
    cache.probe(0, 1);
    EXPECT_GE(checks::violations(CheckSubsys::Cache), 1u);
    EXPECT_TRUE(contains(checks::lastMessage(),
                         "read counter drift"));
}

TEST(CheckCorruptionTest, TimeTravelingFillFiresCache)
{
    checks::ScopedCountMode guard;
    Cache cache(1024, 128, 2, 10);
    cache.fill(0, /*cycle=*/10, /*valid_at=*/5);
    EXPECT_GE(checks::violations(CheckSubsys::Cache), 1u);
}

TEST(CheckCorruptionTest, DramRowHitDriftFiresDram)
{
    checks::ScopedCountMode guard;
    GpuConfig config;
    Dram dram(config);
    DramTestPeer::stats(dram).rowHits =
        DramTestPeer::stats(dram).accesses + 5;
    dram.read(0, 0, 128);
    EXPECT_GE(checks::violations(CheckSubsys::Dram), 1u);
    EXPECT_TRUE(contains(checks::lastMessage(), "row-hit counter"));
}

TEST(CheckCorruptionTest, BadWakeFiresSched)
{
    checks::ScopedCountMode guard;
    GpuConfig config;
    config.numSms = 1;
    AddressSpace space;
    MemSystem mem(config, space);
    GpuStats stats;
    RtUnit rt(0, config, mem, stats);
    SimtCore core(0, config, mem, rt, stats);

    core.wakeWarp(999, 0); // out of range; count mode survives
    EXPECT_EQ(checks::violations(CheckSubsys::Sched), 1u);
    core.wakeWarp(0, 0); // slot exists but holds no sleeping warp
    EXPECT_GE(checks::violations(CheckSubsys::Sched), 2u);
}

TEST(CheckCorruptionTest, OverlappingRangeFiresMem)
{
    checks::ScopedCountMode guard;
    AddressSpace space;
    space.registerRange(0x20000, 256, DataKind::Triangle, "a");
    space.registerRange(0x20080, 256, DataKind::Triangle, "b");
    EXPECT_EQ(checks::violations(CheckSubsys::Mem), 1u);
    EXPECT_TRUE(contains(checks::lastMessage(), "overlaps"));
}

TEST(CheckCorruptionTest, EmptyRangeFiresMem)
{
    checks::ScopedCountMode guard;
    AddressSpace space;
    space.registerRange(0x20000, 0, DataKind::Triangle, "empty");
    EXPECT_EQ(checks::violations(CheckSubsys::Mem), 1u);
}

TEST(CheckCorruptionTest, ScopedCountModeRestoresState)
{
    CheckMode before = checks::mode();
    {
        checks::ScopedCountMode guard;
        EXPECT_EQ(checks::mode(), CheckMode::Count);
        WarpContext wc(nullptr, 0);
        WarpContextTestPeer::pop(wc);
        EXPECT_EQ(checks::total(), 1u);
    }
    EXPECT_EQ(checks::mode(), before);
    EXPECT_EQ(checks::total(), 0u);
}

#endif // LUMI_CHECKS_ENABLED

// --- Observer contract on a real workload -------------------------

/**
 * A healthy end-to-end run must report zero violations, and the
 * check mode must not perturb a single cycle or stat: checks only
 * read model state. (CI additionally diffs a checks-ON build against
 * a -DLUMI_CHECKS=OFF build of the same workload.)
 */
TEST(CheckObserverTest, ModeDoesNotPerturbTiming)
{
    Workload workload{SceneId::BUNNY, ShaderKind::AmbientOcclusion};

    WorkloadResult fail_fast = runWorkload(workload, tinyOptions());

    checks::ScopedCountMode guard;
    WorkloadResult counted = runWorkload(workload, tinyOptions());
#if LUMI_CHECKS_ENABLED
    EXPECT_EQ(checks::total(), 0u) << checks::lastMessage();
#endif

    EXPECT_EQ(fail_fast.stats.cycles, counted.stats.cycles);
    EXPECT_EQ(fail_fast.stats.instructions,
              counted.stats.instructions);
    EXPECT_EQ(fail_fast.stats.raysTraced, counted.stats.raysTraced);
    EXPECT_EQ(fail_fast.statsJson, counted.statsJson);
}

TEST(CheckObserverTest, RepeatedRunsAreByteIdentical)
{
    Workload workload{SceneId::SPNZA, ShaderKind::Shadow};
    WorkloadResult first = runWorkload(workload, tinyOptions());
    WorkloadResult second = runWorkload(workload, tinyOptions());
    EXPECT_EQ(first.stats.cycles, second.stats.cycles);
    EXPECT_EQ(first.statsJson, second.statsJson);
}
