/**
 * @file
 * Integration tests for the ray tracing pipeline: all three shaders
 * render, images are plausible, shader-specific behaviors (anyhit,
 * intersection shaders, shadow occlusion) show up in the statistics,
 * and runs are deterministic.
 */

#include <cstdio>

#include <gtest/gtest.h>

#include "rt/pipeline.hh"
#include "rt/shading.hh"
#include "scene/scene_library.hh"

namespace lumi
{
namespace
{

RenderParams
tinyParams()
{
    RenderParams params;
    params.width = 16;
    params.height = 16;
    params.samplesPerPixel = 1;
    params.maxDepth = 2;
    params.aoRays = 2;
    return params;
}

double
framebufferMean(const std::vector<Vec3> &fb)
{
    double sum = 0.0;
    for (const Vec3 &p : fb)
        sum += (p.x + p.y + p.z) / 3.0;
    return fb.empty() ? 0.0 : sum / fb.size();
}

TEST(Pipeline, AoRenderProducesImage)
{
    Scene scene = buildScene(SceneId::BUNNY, 0.2f);
    Gpu gpu(GpuConfig::mobile());
    RayTracingPipeline pipeline(gpu, scene, tinyParams());
    pipeline.render(ShaderKind::AmbientOcclusion);
    double mean = framebufferMean(pipeline.framebuffer());
    EXPECT_GT(mean, 0.01);
    EXPECT_LT(mean, 2.0);
    EXPECT_GT(gpu.stats().raysByKind[static_cast<int>(
                  RayKind::AmbientOcclusion)],
              0u);
    EXPECT_GT(gpu.stats().cycles, 0u);
}

TEST(Pipeline, ShadowRenderUsesOcclusionRays)
{
    Scene scene = buildScene(SceneId::REF, 0.25f);
    Gpu gpu(GpuConfig::mobile());
    RayTracingPipeline pipeline(gpu, scene, tinyParams());
    pipeline.render(ShaderKind::Shadow);
    const GpuStats &stats = gpu.stats();
    uint64_t primary =
        stats.raysByKind[static_cast<int>(RayKind::Primary)];
    uint64_t shadow =
        stats.raysByKind[static_cast<int>(RayKind::Shadow)];
    EXPECT_EQ(primary, 256u);
    // One shadow ray per light per hit pixel; REF is enclosed so all
    // pixels hit.
    EXPECT_EQ(shadow, 256u * scene.lights.size());
    EXPECT_GT(framebufferMean(pipeline.framebuffer()), 0.005);
}

TEST(Pipeline, PathTracingBounces)
{
    Scene scene = buildScene(SceneId::REF, 0.25f);
    Gpu gpu(GpuConfig::mobile());
    RenderParams params = tinyParams();
    params.maxDepth = 3;
    RayTracingPipeline pipeline(gpu, scene, params);
    pipeline.render(ShaderKind::PathTracing);
    const GpuStats &stats = gpu.stats();
    uint64_t primary =
        stats.raysByKind[static_cast<int>(RayKind::Primary)];
    uint64_t secondary =
        stats.raysByKind[static_cast<int>(RayKind::Secondary)];
    EXPECT_EQ(primary, 256u);
    // Enclosed scene: every path survives to bounce maxDepth-1 times.
    EXPECT_EQ(secondary, 256u * (params.maxDepth - 1));
}

TEST(Pipeline, OpenScenePathsDieAtMiss)
{
    Scene scene = buildScene(SceneId::WKND, 0.3f);
    Gpu gpu(GpuConfig::mobile());
    RenderParams params = tinyParams();
    params.maxDepth = 4;
    RayTracingPipeline pipeline(gpu, scene, params);
    pipeline.render(ShaderKind::PathTracing);
    const GpuStats &stats = gpu.stats();
    uint64_t primary =
        stats.raysByKind[static_cast<int>(RayKind::Primary)];
    uint64_t secondary =
        stats.raysByKind[static_cast<int>(RayKind::Secondary)];
    // Open scene: some paths exit early, so strictly fewer secondary
    // rays than the enclosed bound.
    EXPECT_LT(secondary, primary * (params.maxDepth - 1));
    EXPECT_GT(stats.raysMissed, 0u);
}

TEST(Pipeline, ChsntTriggersAnyHitInvocations)
{
    Scene scene = buildScene(SceneId::CHSNT, 0.2f);
    Gpu gpu(GpuConfig::mobile());
    RayTracingPipeline pipeline(gpu, scene, tinyParams());
    pipeline.render(ShaderKind::PathTracing);
    EXPECT_GT(gpu.stats().anyHitInvocations, 0u);
    // The anyhit shader fetches the alpha texture on the cores.
    uint64_t texture_reads = gpu.memSystem().kindReads()
        [static_cast<int>(DataKind::Texture)];
    EXPECT_GT(texture_reads, 0u);
}

TEST(Pipeline, WkndTriggersIntersectionShaders)
{
    Scene scene = buildScene(SceneId::WKND, 0.3f);
    Gpu gpu(GpuConfig::mobile());
    RayTracingPipeline pipeline(gpu, scene, tinyParams());
    pipeline.render(ShaderKind::PathTracing);
    EXPECT_GT(gpu.stats().intersectionInvocations, 0u);
    EXPECT_GT(gpu.stats().rtProceduralFetches, 0u);
}

TEST(Pipeline, NonAnyHitSceneHasNoAnyHitWork)
{
    Scene scene = buildScene(SceneId::BUNNY, 0.2f);
    Gpu gpu(GpuConfig::mobile());
    RayTracingPipeline pipeline(gpu, scene, tinyParams());
    pipeline.render(ShaderKind::AmbientOcclusion);
    EXPECT_EQ(gpu.stats().anyHitInvocations, 0u);
    EXPECT_EQ(gpu.stats().intersectionInvocations, 0u);
}

TEST(Pipeline, RaysTracedMatchesFunctionalCount)
{
    Scene scene = buildScene(SceneId::SPNZA, 0.15f);
    Gpu gpu(GpuConfig::mobile());
    RayTracingPipeline pipeline(gpu, scene, tinyParams());
    pipeline.render(ShaderKind::AmbientOcclusion);
    const GpuStats &stats = gpu.stats();
    uint64_t by_kind = 0;
    for (int k = 0; k < numRayKinds; k++)
        by_kind += stats.raysByKind[k];
    // Timing-side ray count equals functional-side ray count.
    EXPECT_EQ(stats.raysTraced, by_kind);
    EXPECT_EQ(stats.raysHit + stats.raysMissed, stats.raysTraced);
}

TEST(Pipeline, DeterministicStatsAndImage)
{
    auto run = [](uint64_t *cycles) {
        Scene scene = buildScene(SceneId::REF, 0.25f);
        Gpu gpu(GpuConfig::mobile());
        RayTracingPipeline pipeline(gpu, scene, tinyParams());
        pipeline.render(ShaderKind::PathTracing);
        *cycles = gpu.stats().cycles;
        return framebufferMean(pipeline.framebuffer());
    };
    uint64_t cycles_a = 0, cycles_b = 0;
    double mean_a = run(&cycles_a);
    double mean_b = run(&cycles_b);
    EXPECT_EQ(cycles_a, cycles_b);
    EXPECT_DOUBLE_EQ(mean_a, mean_b);
}

TEST(Pipeline, WritePpm)
{
    Scene scene = buildScene(SceneId::REF, 0.2f);
    Gpu gpu(GpuConfig::mobile());
    RayTracingPipeline pipeline(gpu, scene, tinyParams());
    pipeline.render(ShaderKind::Shadow);
    std::string path = ::testing::TempDir() + "/lumi_test.ppm";
    ASSERT_TRUE(pipeline.writePpm(path));
    FILE *file = std::fopen(path.c_str(), "rb");
    ASSERT_NE(file, nullptr);
    char magic[3] = {};
    ASSERT_EQ(std::fread(magic, 1, 2, file), 2u);
    EXPECT_EQ(magic[0], 'P');
    EXPECT_EQ(magic[1], '6');
    std::fseek(file, 0, SEEK_END);
    long size = std::ftell(file);
    std::fclose(file);
    EXPECT_GT(size, 16 * 16 * 3);
    std::remove(path.c_str());
}

TEST(Pipeline, HigherResolutionTracesMoreRays)
{
    Scene scene = buildScene(SceneId::BUNNY, 0.15f);
    RenderParams small = tinyParams();
    RenderParams large = tinyParams();
    large.width = 32;
    large.height = 32;
    Gpu gpu_small(GpuConfig::mobile());
    RayTracingPipeline p_small(gpu_small, scene, small);
    p_small.render(ShaderKind::AmbientOcclusion);
    Gpu gpu_large(GpuConfig::mobile());
    RayTracingPipeline p_large(gpu_large, scene, large);
    p_large.render(ShaderKind::AmbientOcclusion);
    EXPECT_GT(gpu_large.stats().raysTraced,
              gpu_small.stats().raysTraced * 3);
}

TEST(Shading, SurfaceNormalFacesRay)
{
    Scene scene = buildScene(SceneId::BUNNY, 0.2f);
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);
    for (int i = 0; i < 32; i++) {
        Ray ray = scene.camera.generateRay(i % 8, i / 8, 8, 4, 0.5f,
                                           0.5f);
        HitInfo hit = TraversalStateMachine::traceFunctional(
            accel, ray, false);
        if (!hit.hit)
            continue;
        SurfaceInteraction surface = computeSurface(scene, hit, ray);
        EXPECT_LE(dot(surface.normal, ray.dir), 1e-4f);
        EXPECT_NEAR(length(surface.normal), 1.0f, 1e-3f);
        // Hit position lies on the ray.
        Vec3 expected = ray.origin + ray.dir * hit.t;
        EXPECT_NEAR(length(surface.position - expected), 0.0f,
                    1e-3f);
    }
}

TEST(Shading, AlbedoModulatedByTexture)
{
    Scene scene = buildScene(SceneId::SPNZA, 0.15f);
    // Find a textured material and verify sampling changes albedo
    // across the surface.
    int textured = -1;
    for (size_t m = 0; m < scene.materials.size(); m++) {
        if (scene.materials[m].textureId >= 0) {
            textured = static_cast<int>(m);
            break;
        }
    }
    ASSERT_GE(textured, 0);
    SurfaceInteraction a, b;
    a.materialId = textured;
    a.uv = {0.1f, 0.1f};
    b.materialId = textured;
    b.uv = {0.37f, 0.68f};
    Vec3 albedo_a = surfaceAlbedo(scene, a);
    Vec3 albedo_b = surfaceAlbedo(scene, b);
    EXPECT_NE(albedo_a.x, albedo_b.x);
}

} // namespace
} // namespace lumi
