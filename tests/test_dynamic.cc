/**
 * @file
 * Tests for the dynamic-scene extension: instance re-posing, in-place
 * TLAS refit, and multi-frame rendering through the pipeline.
 */

#include <gtest/gtest.h>

#include "bvh/traversal.hh"
#include "geometry/shapes.hh"
#include "rt/pipeline.hh"
#include "scene/scene_library.hh"

namespace lumi
{
namespace
{

TEST(Dynamic, SetInstanceTransformKeepsInverse)
{
    Scene scene = buildScene(SceneId::REF, 0.2f);
    Mat4 pose = Mat4::translate({1.0f, 2.0f, 3.0f}) *
                Mat4::rotateY(0.6f);
    scene.setInstanceTransform(0, pose);
    const Instance &inst = scene.instances[0];
    // transform * invTransform == identity on a probe point.
    Vec3 p{0.4f, -1.2f, 2.5f};
    Vec3 round = inst.transform.transformPoint(
        inst.invTransform.transformPoint(p));
    EXPECT_NEAR(round.x, p.x, 1e-4f);
    EXPECT_NEAR(round.y, p.y, 1e-4f);
    EXPECT_NEAR(round.z, p.z, 1e-4f);
}

TEST(Dynamic, RefitTracksMovedInstance)
{
    // A single box instance; move it and verify rays follow.
    Scene scene;
    scene.name = "MOVER";
    Material mat;
    int m = scene.addMaterial(mat);
    TriangleMesh box = shapes::box({-1, -1, -1}, {1, 1, 1});
    box.materialId = m;
    scene.addInstance(scene.addGeometry(std::move(box)),
                      Mat4::identity());
    scene.lights.push_back({Light::Type::Point, {0, 5, 0},
                            {1, 1, 1}});

    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);

    Ray toward_origin{{0.0f, 0.0f, 10.0f}, {0.0f, 0.0f, -1.0f}};
    EXPECT_TRUE(TraversalStateMachine::traceFunctional(
                    accel, toward_origin, false)
                    .hit);

    // Move the box far away: the old ray must now miss and a ray at
    // the new position must hit.
    scene.setInstanceTransform(0,
                               Mat4::translate({100.0f, 0.0f, 0.0f}));
    accel.refitTlas();
    EXPECT_FALSE(TraversalStateMachine::traceFunctional(
                     accel, toward_origin, false)
                     .hit);
    Ray toward_new{{100.0f, 0.0f, 10.0f}, {0.0f, 0.0f, -1.0f}};
    EXPECT_TRUE(TraversalStateMachine::traceFunctional(
                    accel, toward_new, false)
                    .hit);
}

TEST(Dynamic, RefitPreservesNodeArraySize)
{
    Scene scene = buildScene(SceneId::FOX, 0.15f);
    AccelStructure accel;
    accel.build(scene);
    uint64_t end = accel.assignAddresses(0x10000);
    size_t nodes_before = accel.tlas().bvh.nodes.size();
    uint64_t node_base = accel.tlas().nodeBase;

    for (size_t i = 0; i < scene.instances.size(); i++) {
        scene.setInstanceTransform(
            i, Mat4::translate({0.5f, 0.25f, 0.0f}) *
                   scene.instances[i].transform);
    }
    accel.refitTlas();
    // One leaf per instance: 2n-1 nodes, invariant under refit, and
    // the simulated addresses stay in place.
    EXPECT_EQ(accel.tlas().bvh.nodes.size(), nodes_before);
    EXPECT_EQ(accel.tlas().nodeBase, node_base);
    EXPECT_EQ(nodes_before, 2 * scene.instances.size() - 1);
    (void)end;
}

TEST(Dynamic, PipelineMultiFrame)
{
    Scene scene = buildScene(SceneId::REF, 0.2f);
    Gpu gpu(GpuConfig::mobile());
    RenderParams params;
    params.width = 12;
    params.height = 12;
    RayTracingPipeline pipeline(gpu, scene, params);

    pipeline.render(ShaderKind::Shadow);
    uint64_t frame0_cycles = gpu.stats().cycles;
    uint64_t frame0_rays = gpu.stats().raysTraced;
    ASSERT_GT(frame0_cycles, 0u);

    // Frame 2: nudge a sphere, refit, render again on the same GPU.
    scene.setInstanceTransform(3,
                               Mat4::translate({0.1f, 0.0f, 0.0f}) *
                                   scene.instances[3].transform);
    pipeline.beginFrame();
    pipeline.render(ShaderKind::Shadow);
    EXPECT_GT(gpu.stats().cycles, frame0_cycles);
    EXPECT_GT(gpu.stats().raysTraced, frame0_rays);
    // Second frame runs warmer: it must cost fewer cycles than the
    // first (compulsory misses already paid).
    uint64_t frame1_cycles = gpu.stats().cycles - frame0_cycles;
    EXPECT_LT(frame1_cycles, frame0_cycles);
}

} // namespace
} // namespace lumi
