/**
 * @file
 * Tests for the Rodinia-equivalent compute workloads: every kernel
 * runs to completion on the simulator, produces instruction and
 * memory traffic, and never touches the RT unit.
 */

#include <gtest/gtest.h>

#include "compute/rodinia.hh"

namespace lumi
{
namespace
{

class EveryKernel : public ::testing::TestWithParam<ComputeKernel>
{
};

TEST_P(EveryKernel, RunsAndProducesWork)
{
    Gpu gpu(GpuConfig::mobile());
    runComputeKernel(gpu, GetParam());
    const GpuStats &stats = gpu.stats();
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.instructions, 100u);
    EXPECT_GT(stats.warpsLaunched, 0u);
    // Compute kernels never trace rays.
    EXPECT_EQ(stats.raysTraced, 0u);
    EXPECT_EQ(stats.rtWarpCycles, 0u);
    EXPECT_EQ(gpu.memSystem().l1Rt().reads, 0u);
    // But they do move data.
    EXPECT_GT(gpu.memSystem().l1Shader().reads, 0u);
    // All data is tagged Compute.
    EXPECT_GT(gpu.memSystem().kindReads()[static_cast<int>(
                  DataKind::Compute)],
              0u);
}

TEST_P(EveryKernel, Deterministic)
{
    auto run = [&] {
        Gpu gpu(GpuConfig::mobile());
        runComputeKernel(gpu, GetParam());
        return gpu.stats().cycles;
    };
    EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryKernel,
    ::testing::ValuesIn(allComputeKernels()),
    [](const ::testing::TestParamInfo<ComputeKernel> &info) {
        return computeKernelName(info.param);
    });

TEST(ComputeKernels, ThirteenKernels)
{
    EXPECT_EQ(allComputeKernels().size(), 13u);
}

TEST(ComputeKernels, BfsIsDivergent)
{
    Gpu gpu(GpuConfig::mobile());
    runComputeKernel(gpu, ComputeKernel::Bfs);
    // Frontier-dependent control flow keeps SIMT efficiency well
    // below streaming kernels like nn.
    double bfs_eff = gpu.stats().simtEfficiency();
    Gpu gpu_nn(GpuConfig::mobile());
    runComputeKernel(gpu_nn, ComputeKernel::Nn);
    double nn_eff = gpu_nn.stats().simtEfficiency();
    EXPECT_LT(bfs_eff, nn_eff);
    EXPECT_GT(nn_eff, 0.95);
}

TEST(ComputeKernels, NnIsStreaming)
{
    Gpu gpu(GpuConfig::mobile());
    runComputeKernel(gpu, ComputeKernel::Nn);
    // Contiguous 8B loads coalesce into few segments per warp.
    double seg_per_instr =
        static_cast<double>(gpu.stats().coalescedSegments) /
        gpu.stats().memInstructions;
    EXPECT_LT(seg_per_instr, 4.0);
}

TEST(ComputeKernels, BtreeGathersRandomly)
{
    Gpu gpu(GpuConfig::mobile());
    runComputeKernel(gpu, ComputeKernel::Btree);
    // Pointer chasing: poor coalescing relative to hotspot.
    double btree_seg =
        static_cast<double>(gpu.stats().coalescedSegments) /
        gpu.stats().memInstructions;
    Gpu gpu_hs(GpuConfig::mobile());
    runComputeKernel(gpu_hs, ComputeKernel::Hotspot);
    double hotspot_seg =
        static_cast<double>(gpu_hs.stats().coalescedSegments) /
        gpu_hs.stats().memInstructions;
    EXPECT_GT(btree_seg, hotspot_seg);
}

} // namespace
} // namespace lumi
