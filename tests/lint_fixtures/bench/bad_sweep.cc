// Fixture: campaign-sweep rule -- a bench binary hand-rolling its
// own workload loop instead of going through bench_util
// runAll()/runJobs(). Never compiled.
int main() {
    long total = 0;
    for (int i = 0; i < 8; ++i) {
        total += runWorkload(i);  // expect(campaign-sweep)
    }
    return total == 0 ? 0 : 1;
}
