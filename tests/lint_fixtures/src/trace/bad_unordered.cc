// Fixture: unordered-iter rule -- hash-order iteration while
// emitting output.
#include <cstdio>
#include <unordered_map>

static std::unordered_map<int, int> table;

void dumpTable() {
    for (const auto &kv : table) {  // expect(unordered-iter)
        std::printf("%d %d\n", kv.first, kv.second);
    }
}

void dumpRange(const int *begin, const int *end) {
    // Ordered iteration is fine.
    for (const int *it = begin; it != end; ++it) {
        std::printf("%d\n", *it);
    }
}
