// Fixture: lock-discipline rule -- one guarded field, touched three
// legal ways (RAII guard, manual lock window, LUMI_REQUIRES) and one
// illegal way.
#include "check/thread_annotations.hh"

class Counter {
  public:
    void bump() {
        lumi::MutexLock lock(mutex_);
        hits_ += 1;
    }

    void manualBump() {
        mutex_.lock();
        hits_ += 1;
        mutex_.unlock();
    }

    void racyBump() {
        hits_ += 1;  // expect(lock-discipline)
    }

    uint64_t read() LUMI_REQUIRES(mutex_) {
        return hits_;
    }

  private:
    lumi::Mutex mutex_;
    uint64_t hits_ LUMI_GUARDED_BY(mutex_) = 0;
};

// A function-local guarded struct (campaign.cc's IoState shape):
// the member declaration is not an access, the locked touch is
// fine, the unlocked touch is not.
void localState() {
    struct IoState {
        lumi::Mutex mutex;
        uint64_t lines LUMI_GUARDED_BY(mutex) = 0;
    } io;
    {
        lumi::MutexLock lock(io.mutex);
        io.lines++;
    }
    io.lines++;  // expect(lock-discipline)
}
