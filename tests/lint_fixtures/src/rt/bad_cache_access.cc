// Fixture: cache-access rule -- a direct probe bypassing the
// MemSystem issue ports.
struct Cache {
    bool probe(long addr);
};

bool snoop(Cache *cache, long addr) {
    return cache->probe(addr);  // expect(cache-access)
}
