// Fixture: gpu-chrono rule -- host clock in the model outside the
// sanctioned host_profile helper.
#include <chrono>  // expect(gpu-chrono)

double hostSeconds();
