// Fixture: stat-coverage rule -- registers cycles and stalls but
// forgets orphan_counter, so the rule must flag GpuStats.
#include "gpu/stats.hh"

struct Registry {
    void add(const char *name, uint64_t *counter);
};

void registerGpuStats(Registry &registry, GpuStats *s) {
    registry.add("cycles", &s->cycles);
    registry.add("stalls", &s->stalls);
}
