// Fixture: known-clean file packing the tokenizer's historical
// trouble spots -- no rule may fire anywhere in here.
#include "gpu/gpu.hh"
#include <algorithm>
#include <cstdint>

// "rand()" in a comment must not fire, nor may any banned token in
// the literals below. std::chrono and time(NULL) appear only inside
// a raw string; the quote-bearing char literals were the old
// scanner's phantom-string trigger.
static const char *kUsage = "do not call rand() here";
static const char *kRaw = R"raw(std::chrono and time(NULL) "quoted")raw";
static const char kQuote = '"';
static const char kEscaped = '\'';
static const char32_t kWide = U'"';

uint64_t population(uint64_t *begin, uint64_t *end) {
    // std::fill is a free function, not Cache::fill: no receiver dot
    // or arrow, so cache-access must stay quiet.
    std::fill(begin, end, uint64_t{1'000'000});
    uint64_t sum = 0;
    for (uint64_t *it = begin; it != end; ++it) {
        sum += *it;
    }
    return sum;
}
