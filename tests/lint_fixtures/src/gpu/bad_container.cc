// Fixture for the hot-path-container rule: node-based std
// containers declared in src/gpu cycle-path code. The last member
// shows the sanctioned escape hatch for deliberate cold-path uses.

#include <cstdint>
#include <list>
#include <map>
#include <unordered_map>

struct MshrFile
{
    std::map<uint64_t, int> pending;        // expect(hot-path-container)
    std::unordered_map<uint64_t, int> tags; // expect(hot-path-container)
    std::list<int> retryQueue;              // expect(hot-path-container)
    // Cold path (dump-time only), deliberately allowlisted:
    std::map<int, int> debugIndex; // lint:allow(hot-path-container)
};
