// Fixture: layering rule -- the timing model reaching up into the
// campaign engine. gpu -> math is inside the matrix; gpu -> campaign
// is the inversion the rule exists to catch.
#include "campaign/campaign.hh"  // expect(layering)
#include "math/vec.hh"

void modelStep();
