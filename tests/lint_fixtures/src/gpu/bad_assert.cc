// Fixture: no-bare-assert rule.
#include <cassert>

void checkInvariant(int x) {
    assert(x >= 0);  // expect(no-bare-assert)
    static_assert(sizeof(int) == 4, "ILP32/LP64 only");
}
