// expect(stat-coverage)  -- orphan_counter below is never registered
// in stat_bindings.cc; the rule reports against line 1 of the header.
#pragma once
#include <cstdint>

struct GpuStats {
    uint64_t cycles = 0;
    uint64_t stalls = 0;
    uint64_t orphan_counter = 0;

    uint64_t busy() const {
        uint64_t live = cycles - stalls;  // local, not a counter
        return live;
    }
};
