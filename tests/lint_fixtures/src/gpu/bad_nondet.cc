// Fixture: nondeterminism rule + regressions for the two bugs the
// old strip_comments scanner had (char literals holding a quote,
// raw strings scanned as ordinary strings).
#include "gpu/gpu.hh"

static int entropy() {
    return rand();  // expect(nondeterminism)
}

// Regression 1: a banned call inside a raw string must not fire --
// the tokenizer blanks literal contents. The old scanner tore the
// literal open at the inner `)"` and matched the contents.
static const char *kDoc = R"(seed it yourself, never rand())";

// Regression 2: a char literal holding a quote must not open a
// phantom string; the banned call after it must still fire. The old
// scanner treated the `"` inside '"' as a string opener and
// swallowed the rest of the file.
static int quoteThenRand(char c) {
    if (c == '"') return rand();  // expect(nondeterminism)
    return 0;
}

// Suppression: an allow comment silences exactly this line. If the
// framework-level suppression broke, this would surface as an
// unexpected finding.
static int sanctioned() {
    return rand();  // lint:allow(nondeterminism)
}
