/**
 * @file
 * Tests for the top-down cycle-accounting profiler (gpu/profile.hh).
 *
 * The load-bearing property is conservation: every SM issue slot and
 * every RT-unit cycle lands in exactly one bucket, so the per-run
 * account sums to cycles x units — fuzzed here across all three
 * workload families (graphics, RTQ queries, Rodinia-equivalent
 * compute) under both the unlimited-resource mobile config and the
 * finite table4() config. The in-model LUMI_CHECK already aborts a
 * run whose per-SM account leaks, so these tests re-assert the
 * aggregate from outside the model and pin the semantic shape:
 * compute kernels never wait on RT, procedural scenes charge
 * busy_procedural, finite memory resources surface no_ready_warp.
 * The cache round-trip test closes the observability loop: profile
 * buckets rehydrate from a cached report bit-exactly.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "campaign/cache.hh"
#include "campaign/campaign.hh"
#include "gpu/config.hh"
#include "gpu/profile.hh"
#include "lumibench/runner.hh"
#include "lumibench/workload.hh"

using namespace lumi;
using campaign::Job;

namespace
{

RunOptions
tinyOptions(GpuConfig config)
{
    RunOptions options;
    options.params.width = 16;
    options.params.height = 16;
    options.params.samplesPerPixel = 1;
    options.sceneDetail = 0.1f;
    options.config = config;
    return options;
}

/** Assert the aggregate account sums to cycles x units, both sides. */
void
expectConserved(const WorkloadResult &result, int num_sms)
{
    uint64_t slots =
        result.stats.cycles * static_cast<uint64_t>(num_sms);
    EXPECT_EQ(result.profileSm.sum(), slots) << result.id;
    EXPECT_EQ(result.profileRt.sum(), slots) << result.id;
}

} // namespace

// --- CycleProfile arithmetic --------------------------------------

TEST(CycleProfile, AddAndMoveMaintainTotals)
{
    CycleProfile profile;
    profile.init(2);
    profile.addSm(0, SmCycleBucket::Issued, 3);
    profile.addSm(1, SmCycleBucket::Drain, 5);
    profile.addRt(0, RtCycleBucket::BusyBox, 7);

    EXPECT_EQ(profile.sm(0).cycles[static_cast<int>(
                  SmCycleBucket::Issued)],
              3u);
    EXPECT_EQ(profile.smTotal().sum(), 8u);
    EXPECT_EQ(profile.rtTotal().sum(), 7u);

    // moveSm reclassifies without changing the total (drain tails
    // become sync when the next kernel launches).
    profile.moveSm(1, SmCycleBucket::Drain, SmCycleBucket::Sync, 5);
    EXPECT_EQ(profile.sm(1).cycles[static_cast<int>(
                  SmCycleBucket::Drain)],
              0u);
    EXPECT_EQ(profile.smTotal().cycles[static_cast<int>(
                  SmCycleBucket::Sync)],
              5u);
    EXPECT_EQ(profile.smTotal().sum(), 8u);
}

TEST(CycleProfile, BucketNamesAreStable)
{
    EXPECT_STREQ(smCycleBucketName(SmCycleBucket::Issued), "issued");
    EXPECT_STREQ(smCycleBucketName(SmCycleBucket::MemPending),
                 "mem_pending");
    EXPECT_STREQ(smCycleBucketName(SmCycleBucket::RtWait),
                 "rt_wait");
    EXPECT_STREQ(smCycleBucketName(SmCycleBucket::Sync), "sync");
    EXPECT_STREQ(smCycleBucketName(SmCycleBucket::NoReadyWarp),
                 "no_ready_warp");
    EXPECT_STREQ(smCycleBucketName(SmCycleBucket::Empty), "empty");
    EXPECT_STREQ(smCycleBucketName(SmCycleBucket::Drain), "drain");
    EXPECT_STREQ(rtCycleBucketName(RtCycleBucket::BusyBox),
                 "busy_box");
    EXPECT_STREQ(rtCycleBucketName(RtCycleBucket::BusyTri),
                 "busy_tri");
    EXPECT_STREQ(rtCycleBucketName(RtCycleBucket::BusyProcedural),
                 "busy_procedural");
    EXPECT_STREQ(rtCycleBucketName(RtCycleBucket::FetchWait),
                 "fetch_wait");
    EXPECT_STREQ(rtCycleBucketName(RtCycleBucket::WritebackStall),
                 "writeback_stall");
    EXPECT_STREQ(rtCycleBucketName(RtCycleBucket::Idle), "idle");
}

// --- Conservation fuzz: families x configs ------------------------

struct ConservationPoint
{
    const char *tag;
    SceneId scene;
    ShaderKind shader;
};

class ProfileConservation
    : public ::testing::TestWithParam<ConservationPoint>
{
};

TEST_P(ProfileConservation, HoldsUnderUnlimitedConfig)
{
    const ConservationPoint &point = GetParam();
    GpuConfig config = GpuConfig::mobile();
    WorkloadResult result = runWorkload(
        {point.scene, point.shader}, tinyOptions(config));
    expectConserved(result, config.numSms);
}

TEST_P(ProfileConservation, HoldsUnderTable4Config)
{
    const ConservationPoint &point = GetParam();
    GpuConfig config = GpuConfig::table4();
    WorkloadResult result = runWorkload(
        {point.scene, point.shader}, tinyOptions(config));
    expectConserved(result, config.numSms);
}

INSTANTIATE_TEST_SUITE_P(
    Families, ProfileConservation,
    ::testing::Values(
        // Graphics: one per shader type, plus the procedural and
        // alpha-masking scenes that exercise special RT paths.
        ConservationPoint{"spnza_ao", SceneId::SPNZA,
                          ShaderKind::AmbientOcclusion},
        ConservationPoint{"bunny_pt", SceneId::BUNNY,
                          ShaderKind::PathTracing},
        ConservationPoint{"ship_sh", SceneId::SHIP,
                          ShaderKind::Shadow},
        ConservationPoint{"wknd_pt", SceneId::WKND,
                          ShaderKind::PathTracing},
        ConservationPoint{"chsnt_pt", SceneId::CHSNT,
                          ShaderKind::PathTracing},
        // RTQ: RT cores as compute queries.
        ConservationPoint{"amr_pc", SceneId::AMR,
                          ShaderKind::PointContainment},
        ConservationPoint{"pts_knn", SceneId::PTS,
                          ShaderKind::Knn}),
    [](const ::testing::TestParamInfo<ConservationPoint> &info) {
        return std::string(info.param.tag);
    });

TEST(ProfileConservationCompute, HoldsForComputeKernels)
{
    for (GpuConfig config :
         {GpuConfig::mobile(), GpuConfig::table4()}) {
        for (ComputeKernel kernel :
             {ComputeKernel::Bfs, ComputeKernel::Nn,
              ComputeKernel::Kmeans}) {
            WorkloadResult result =
                runCompute(kernel, tinyOptions(config));
            expectConserved(result, config.numSms);
        }
    }
}

// --- Semantic shape of the taxonomy -------------------------------

TEST(ProfileSemantics, ComputeKernelsNeverWaitOnRt)
{
    WorkloadResult result = runCompute(
        ComputeKernel::Bfs, tinyOptions(GpuConfig::mobile()));
    const uint64_t *sm = result.profileSm.cycles;
    const uint64_t *rt = result.profileRt.cycles;
    EXPECT_EQ(sm[static_cast<int>(SmCycleBucket::RtWait)], 0u);
    EXPECT_GT(sm[static_cast<int>(SmCycleBucket::Issued)], 0u);
    // The RT units see no rays: the whole account is idle.
    EXPECT_EQ(rt[static_cast<int>(RtCycleBucket::Idle)],
              result.profileRt.sum());
}

TEST(ProfileSemantics, ProceduralScenesChargeProceduralBucket)
{
    WorkloadResult wknd = runWorkload(
        {SceneId::WKND, ShaderKind::PathTracing},
        tinyOptions(GpuConfig::mobile()));
    WorkloadResult bunny = runWorkload(
        {SceneId::BUNNY, ShaderKind::PathTracing},
        tinyOptions(GpuConfig::mobile()));
    EXPECT_GT(wknd.profileRt.cycles[static_cast<int>(
                  RtCycleBucket::BusyProcedural)],
              0u);
    EXPECT_GT(bunny.profileRt.cycles[static_cast<int>(
                  RtCycleBucket::BusyTri)],
              0u);
    EXPECT_EQ(bunny.profileRt.cycles[static_cast<int>(
                  RtCycleBucket::BusyProcedural)],
              0u);
    // Graphics workloads park warps in traceRay.
    EXPECT_GT(bunny.profileSm.cycles[static_cast<int>(
                  SmCycleBucket::RtWait)],
              0u);
}

TEST(ProfileSemantics, FiniteResourcesSurfaceNoReadyWarp)
{
    // Under table4() the MSHR/port limits throttle memory-level
    // parallelism, so some cycles must find every warp blocked: the
    // latency-not-hidden bucket the CI smoke also pins.
    WorkloadResult result = runWorkload(
        {SceneId::SPNZA, ShaderKind::AmbientOcclusion},
        tinyOptions(GpuConfig::table4()));
    EXPECT_GT(result.profileSm.cycles[static_cast<int>(
                  SmCycleBucket::NoReadyWarp)],
              0u);
}

// --- Determinism and cache round-trip -----------------------------

TEST(ProfileDeterminism, RepeatedRunsProduceIdenticalAccounts)
{
    RunOptions options = tinyOptions(GpuConfig::mobile());
    Workload workload{SceneId::REF, ShaderKind::Shadow};
    WorkloadResult a = runWorkload(workload, options);
    WorkloadResult b = runWorkload(workload, options);
    EXPECT_EQ(a.statsJson, b.statsJson);
    for (int bucket = 0; bucket < numSmCycleBuckets; bucket++)
        EXPECT_EQ(a.profileSm.cycles[bucket],
                  b.profileSm.cycles[bucket]);
    for (int bucket = 0; bucket < numRtCycleBuckets; bucket++)
        EXPECT_EQ(a.profileRt.cycles[bucket],
                  b.profileRt.cycles[bucket]);
}

TEST(ProfileCacheRoundTrip, BucketsRehydrateBitExactly)
{
    RunOptions options = tinyOptions(GpuConfig::mobile());
    Workload workload{SceneId::BUNNY, ShaderKind::AmbientOcclusion};
    Job job = Job::rayTracing(workload, options);
    WorkloadResult cold = runWorkload(workload, options);

    std::string dir =
        (std::filesystem::temp_directory_path() /
         ("lumi_profile_cache_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    std::string path = dir + "/" + campaign::cacheKey(job);
    ASSERT_TRUE(campaign::writeCachedResult(path, job, cold));

    WorkloadResult warm;
    ASSERT_TRUE(campaign::readCachedResult(path, job, warm));
    // The stat dump round-trips byte-identically, and the typed
    // bucket structs rehydrate to the exact same counters.
    EXPECT_EQ(warm.statsJson, cold.statsJson);
    for (int bucket = 0; bucket < numSmCycleBuckets; bucket++)
        EXPECT_EQ(warm.profileSm.cycles[bucket],
                  cold.profileSm.cycles[bucket]);
    for (int bucket = 0; bucket < numRtCycleBuckets; bucket++)
        EXPECT_EQ(warm.profileRt.cycles[bucket],
                  cold.profileRt.cycles[bucket]);
    EXPECT_GT(warm.profileSm.sum(), 0u);
    std::filesystem::remove_all(dir);
}
