/**
 * @file
 * Tests for the BVH builder, the two-level acceleration structure and
 * the traversal state machine -- including the central property test:
 * traversal must agree with brute-force intersection over every
 * instance and primitive.
 */

#include <limits>

#include <gtest/gtest.h>

#include "bvh/accel.hh"
#include "bvh/builder.hh"
#include "bvh/traversal.hh"
#include "geometry/shapes.hh"
#include "math/rng.hh"
#include "scene/scene_library.hh"

namespace lumi
{
namespace
{

constexpr float infinity = std::numeric_limits<float>::max();

std::vector<Aabb>
randomBoxes(int count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<Aabb> boxes;
    for (int i = 0; i < count; i++) {
        Vec3 lo = rng.nextInBox({-50, -50, -50}, {50, 50, 50});
        Vec3 size = rng.nextInBox({0.1f, 0.1f, 0.1f}, {4, 4, 4});
        Aabb box;
        box.extend(lo);
        box.extend(lo + size);
        boxes.push_back(box);
    }
    return boxes;
}

TEST(BvhBuilder, EmptyInput)
{
    BvhBuilder builder;
    Bvh bvh = builder.build({});
    EXPECT_TRUE(bvh.empty());
    EXPECT_TRUE(bvh.bounds().empty());
}

TEST(BvhBuilder, SinglePrimitive)
{
    BvhBuilder builder;
    Bvh bvh = builder.build(randomBoxes(1, 1));
    EXPECT_EQ(bvh.nodes.size(), 1u);
    EXPECT_TRUE(bvh.root().isLeaf());
    EXPECT_EQ(bvh.primIndices.size(), 1u);
}

TEST(BvhBuilder, AllPrimitivesCoveredExactlyOnce)
{
    BvhBuilder builder;
    std::vector<Aabb> boxes = randomBoxes(500, 2);
    Bvh bvh = builder.build(boxes);
    ASSERT_EQ(bvh.primIndices.size(), boxes.size());
    std::vector<int> seen(boxes.size(), 0);
    for (uint32_t idx : bvh.primIndices)
        seen[idx]++;
    for (int count : seen)
        EXPECT_EQ(count, 1);
    // Every leaf range must be in bounds and disjoint.
    uint64_t leaf_total = 0;
    for (const BvhNode &node : bvh.nodes) {
        if (node.isLeaf()) {
            leaf_total += node.primCount;
            EXPECT_LE(node.firstPrim + node.primCount,
                      bvh.primIndices.size());
        }
    }
    EXPECT_EQ(leaf_total, boxes.size());
}

TEST(BvhBuilder, NodesBoundTheirChildren)
{
    BvhBuilder builder;
    std::vector<Aabb> boxes = randomBoxes(300, 3);
    Bvh bvh = builder.build(boxes);
    for (const BvhNode &node : bvh.nodes) {
        if (node.isLeaf()) {
            for (uint32_t i = 0; i < node.primCount; i++) {
                const Aabb &prim =
                    boxes[bvh.primIndices[node.firstPrim + i]];
                EXPECT_TRUE(node.bounds.contains(prim.lo));
                EXPECT_TRUE(node.bounds.contains(prim.hi));
            }
        } else {
            const Aabb &lb = bvh.nodes[node.left].bounds;
            const Aabb &rb = bvh.nodes[node.right].bounds;
            EXPECT_TRUE(node.bounds.contains(lb.lo));
            EXPECT_TRUE(node.bounds.contains(lb.hi));
            EXPECT_TRUE(node.bounds.contains(rb.lo));
            EXPECT_TRUE(node.bounds.contains(rb.hi));
        }
    }
}

TEST(BvhBuilder, StrictLeafSizeWhenMaxOne)
{
    BuilderConfig config;
    config.maxLeafPrims = 1;
    BvhBuilder builder(config);
    Bvh bvh = builder.build(randomBoxes(64, 4));
    for (const BvhNode &node : bvh.nodes) {
        if (node.isLeaf()) {
            EXPECT_EQ(node.primCount, 1u);
        }
    }
    BvhStats stats = bvh.computeStats();
    EXPECT_EQ(stats.leafCount, 64u);
}

TEST(BvhBuilder, IdenticalCentroidsDoNotRecurseForever)
{
    // 100 boxes at the same position: median fallback must bound
    // the depth.
    std::vector<Aabb> boxes;
    for (int i = 0; i < 100; i++) {
        Aabb box;
        box.extend({0, 0, 0});
        box.extend({1, 1, 1});
        boxes.push_back(box);
    }
    BvhBuilder builder;
    Bvh bvh = builder.build(boxes);
    BvhStats stats = bvh.computeStats();
    EXPECT_LE(stats.maxDepth, 20);
    uint32_t covered = 0;
    for (const BvhNode &node : bvh.nodes) {
        if (node.isLeaf())
            covered += node.primCount;
    }
    EXPECT_EQ(covered, 100u);
}

TEST(BvhStats, DepthAndCounts)
{
    BvhBuilder builder;
    Bvh bvh = builder.build(randomBoxes(256, 5));
    BvhStats stats = bvh.computeStats();
    EXPECT_EQ(stats.nodeCount, bvh.nodes.size());
    EXPECT_EQ(stats.leafCount + stats.internalCount, stats.nodeCount);
    EXPECT_GE(stats.maxDepth, 5);  // 256 prims, <=4 per leaf
    EXPECT_LE(stats.maxDepth, 40);
    EXPECT_GE(stats.avgLeafPrims, 1.0);
    EXPECT_LE(stats.avgLeafPrims, 16.0);
}

TEST(BvhStats, LongThinOverlapHigherThanCompact)
{
    // Long thin diagonal slivers overlap far more than a grid of
    // compact boxes (Sec. 3.1.2's stress rationale).
    Rng rng(6);
    std::vector<Aabb> thin;
    for (int i = 0; i < 200; i++) {
        Vec3 base = rng.nextInBox({-10, -10, -10}, {10, 10, 10});
        Aabb box;
        box.extend(base);
        box.extend(base + Vec3(8.0f, 8.0f, 0.05f));
        thin.push_back(box);
    }
    std::vector<Aabb> compact;
    for (int i = 0; i < 200; i++) {
        Vec3 base{static_cast<float>(i % 20),
                  static_cast<float>(i / 20), 0.0f};
        Aabb box;
        box.extend(base);
        box.extend(base + Vec3(0.9f));
        compact.push_back(box);
    }
    BvhBuilder builder;
    double thin_overlap =
        builder.build(thin).computeStats().siblingOverlap;
    double compact_overlap =
        builder.build(compact).computeStats().siblingOverlap;
    EXPECT_GT(thin_overlap, compact_overlap);
}

// ------------------------------------------------------------------
// Traversal correctness: compare against brute force over a real
// multi-instance scene.
// ------------------------------------------------------------------

HitInfo
bruteForce(const Scene &scene, const Ray &ray, float t_max)
{
    HitInfo best;
    best.t = t_max;
    for (size_t inst = 0; inst < scene.instances.size(); inst++) {
        const Instance &instance = scene.instances[inst];
        const Geometry &geom =
            scene.geometries[instance.geometryId];
        Vec3 o = instance.invTransform.transformPoint(ray.origin);
        Vec3 d = instance.invTransform.transformVector(ray.dir);
        if (geom.kind == Geometry::Kind::Triangles) {
            const Material &mat =
                scene.materials[geom.mesh.materialId];
            for (size_t t = 0; t < geom.mesh.triangleCount(); t++) {
                TriangleHit hit;
                if (!geom.mesh.intersect(t, o, d, 1e-4f, best.t,
                                         hit)) {
                    continue;
                }
                if (mat.needsAnyHit()) {
                    Vec2 uv = geom.mesh.uvAt(t, hit.u, hit.v);
                    const Texture &tex =
                        scene.textures[mat.alphaTextureId];
                    if (tex.sample(uv.x, uv.y).w < 0.5f)
                        continue;
                }
                best.hit = true;
                best.t = hit.t;
                best.instanceIndex = static_cast<int>(inst);
                best.geometryId = instance.geometryId;
                best.primIndex = static_cast<uint32_t>(t);
            }
        } else {
            for (size_t s = 0; s < geom.spheres.count(); s++) {
                float t;
                if (geom.spheres.intersect(s, o, d, 1e-4f, best.t,
                                           t)) {
                    best.hit = true;
                    best.t = t;
                    best.instanceIndex = static_cast<int>(inst);
                    best.geometryId = instance.geometryId;
                    best.primIndex = static_cast<uint32_t>(s);
                }
            }
        }
    }
    if (!best.hit)
        best.t = 0.0f;
    return best;
}

class TraversalMatchesBruteForce
    : public ::testing::TestWithParam<SceneId>
{
};

TEST_P(TraversalMatchesBruteForce, RandomRays)
{
    Scene scene = buildScene(GetParam(), 0.15f);
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);

    Aabb bounds = scene.worldBounds();
    Vec3 center = bounds.center();
    float radius = length(bounds.extent()) * 0.5f + 1.0f;
    Rng rng(77);
    int hits = 0;
    for (int i = 0; i < 150; i++) {
        Ray ray;
        ray.origin = center + rng.nextInBox({-1, -1, -1}, {1, 1, 1}) *
                                  radius;
        Vec3 target = center + rng.nextInBox({-1, -1, -1}, {1, 1, 1}) *
                                   (radius * 0.4f);
        ray.dir = normalize(target - ray.origin);
        HitInfo expect = bruteForce(scene, ray, infinity);
        HitInfo got = TraversalStateMachine::traceFunctional(
            accel, ray, false, 1e-4f, infinity);
        ASSERT_EQ(got.hit, expect.hit) << "ray " << i;
        if (expect.hit) {
            hits++;
            EXPECT_NEAR(got.t, expect.t, 1e-3f * radius)
                << "ray " << i;
        }
    }
    // The sampling above must actually exercise hits.
    EXPECT_GT(hits, 10);
}

INSTANTIATE_TEST_SUITE_P(
    Scenes, TraversalMatchesBruteForce,
    ::testing::Values(SceneId::BUNNY, SceneId::REF, SceneId::WKND,
                      SceneId::SHIP, SceneId::PARTY, SceneId::CHSNT,
                      SceneId::SPNZA),
    [](const ::testing::TestParamInfo<SceneId> &info) {
        return sceneName(info.param);
    });

TEST(Traversal, AnyHitTerminatesEarly)
{
    Scene scene = buildScene(SceneId::BUNNY, 0.2f);
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);

    Ray ray = scene.camera.generateRay(16, 16, 32, 32, 0.5f, 0.5f);
    TraversalStats closest_stats, any_stats;
    HitInfo closest = TraversalStateMachine::traceFunctional(
        accel, ray, false, 1e-4f, infinity, &closest_stats);
    HitInfo any = TraversalStateMachine::traceFunctional(
        accel, ray, true, 1e-4f, infinity, &any_stats);
    ASSERT_TRUE(closest.hit);
    ASSERT_TRUE(any.hit);
    // Occlusion query visits at most as many nodes.
    EXPECT_LE(any_stats.nodesVisited(),
              closest_stats.nodesVisited());
    // And its hit may be any hit, so t >= closest t.
    EXPECT_GE(any.t, closest.t - 1e-4f);
}

TEST(Traversal, TMaxLimitsHits)
{
    Scene scene = buildScene(SceneId::BUNNY, 0.2f);
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);
    Ray ray = scene.camera.generateRay(16, 16, 32, 32, 0.5f, 0.5f);
    HitInfo unlimited = TraversalStateMachine::traceFunctional(
        accel, ray, false, 1e-4f, infinity);
    ASSERT_TRUE(unlimited.hit);
    // A t_max below the closest hit distance must miss.
    HitInfo limited = TraversalStateMachine::traceFunctional(
        accel, ray, false, 1e-4f, unlimited.t * 0.5f);
    EXPECT_FALSE(limited.hit);
}

TEST(Traversal, MissingRayVisitsNothing)
{
    Scene scene = buildScene(SceneId::WKND, 0.2f);
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);
    // Shoot away from the scene.
    Aabb bounds = scene.worldBounds();
    Ray ray;
    ray.origin = bounds.center() +
                 Vec3(0.0f, bounds.extent().y * 4.0f, 0.0f);
    ray.dir = {0.0f, 1.0f, 0.0f};
    TraversalStats stats;
    HitInfo hit = TraversalStateMachine::traceFunctional(
        accel, ray, false, 1e-4f, infinity, &stats);
    EXPECT_FALSE(hit.hit);
    EXPECT_EQ(stats.nodesVisited(), 0u);
}

TEST(Traversal, AnyHitQueueRecordsAlphaTests)
{
    Scene scene = buildScene(SceneId::CHSNT, 0.15f);
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);

    // Fire a bundle of rays through the canopy; at least one must
    // touch an alpha-masked leaf card and queue anyhit work.
    Aabb bounds = scene.worldBounds();
    Vec3 canopy = bounds.center();
    Rng rng(5);
    size_t total_anyhit = 0;
    for (int i = 0; i < 64; i++) {
        Ray ray;
        ray.origin = canopy + Vec3(12.0f, rng.nextRange(-2.0f, 4.0f),
                                   rng.nextRange(-3.0f, 3.0f));
        ray.dir = normalize(canopy - ray.origin);
        TraversalStateMachine machine(accel, ray, false);
        while (!machine.done())
            machine.advance();
        total_anyhit += machine.anyHitQueue().size();
    }
    EXPECT_GT(total_anyhit, 0u);
}

TEST(Traversal, IntersectionQueueForProcedural)
{
    Scene scene = buildScene(SceneId::WKND, 0.3f);
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);
    Ray ray = scene.camera.generateRay(16, 16, 32, 32, 0.5f, 0.5f);
    TraversalStateMachine machine(accel, ray, false);
    while (!machine.done())
        machine.advance();
    EXPECT_GT(machine.intersectionQueue().size(), 0u);
    EXPECT_GT(machine.stats().proceduralTests, 0u);
}

TEST(Traversal, EventAddressesWithinAssignedRanges)
{
    Scene scene = buildScene(SceneId::REF, 0.3f);
    AccelStructure accel;
    accel.build(scene);
    uint64_t base = 0x10000;
    uint64_t end = accel.assignAddresses(base);
    Ray ray = scene.camera.generateRay(8, 8, 16, 16, 0.5f, 0.5f);
    TraversalStateMachine machine(accel, ray, false);
    while (!machine.done()) {
        TraversalEvent event = machine.advance();
        if (event.type == TraversalEvent::Type::Done)
            break;
        EXPECT_GE(event.address, base);
        EXPECT_LT(event.address + event.bytes, end + 128);
        EXPECT_GT(event.bytes, 0u);
    }
}

TEST(AccelStructure, StatsConsistent)
{
    Scene scene = buildScene(SceneId::PARTY, 0.2f);
    AccelStructure accel;
    accel.build(scene);
    AccelStats stats = accel.computeStats();
    EXPECT_EQ(stats.instances, scene.instances.size());
    EXPECT_EQ(stats.blasCount, scene.geometries.size());
    EXPECT_GT(stats.instancedPrimitives, stats.uniqueTriangles);
    EXPECT_EQ(stats.totalDepth,
              stats.tlasDepth + stats.maxBlasDepth);
    EXPECT_GT(stats.memoryFootprintBytes, 0u);
}

TEST(AccelStructure, TlasLeafPerInstance)
{
    Scene scene = buildScene(SceneId::FOX, 0.15f);
    AccelStructure accel;
    accel.build(scene);
    const Bvh &tlas = accel.tlas().bvh;
    uint32_t leaf_prims = 0;
    for (const BvhNode &node : tlas.nodes) {
        if (node.isLeaf()) {
            EXPECT_EQ(node.primCount, 1u);
            leaf_prims += node.primCount;
        }
    }
    EXPECT_EQ(leaf_prims, scene.instances.size());
}

} // namespace
} // namespace lumi
