/**
 * @file
 * Tests for the analysis toolchain: PCA, hierarchical clustering and
 * dendrogram, GA metric selection, linear regression, the Hong-Kim
 * analytical model and Kiviat normalization.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/analytical.hh"
#include "analysis/cluster.hh"
#include "analysis/genetic.hh"
#include "analysis/kiviat.hh"
#include "analysis/pca.hh"
#include "analysis/regression.hh"
#include "math/rng.hh"

namespace lumi
{
namespace
{

/** Two well-separated Gaussian blobs in high dimension. */
std::vector<std::vector<double>>
twoBlobs(int per_blob, int dims, uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::vector<double>> rows;
    for (int blob = 0; blob < 2; blob++) {
        for (int i = 0; i < per_blob; i++) {
            std::vector<double> row(dims);
            for (int d = 0; d < dims; d++) {
                double center = blob == 0 ? -5.0 : 5.0;
                row[d] = center + rng.nextRange(-1.0f, 1.0f);
            }
            rows.push_back(std::move(row));
        }
    }
    return rows;
}

TEST(Pca, EigenvaluesDescendAndCoverVariance)
{
    auto data = twoBlobs(10, 6, 1);
    PcaResult result = pca(data, 0.9);
    ASSERT_GT(result.kept, 0);
    for (size_t i = 1; i < result.eigenvalues.size(); i++)
        EXPECT_LE(result.eigenvalues[i], result.eigenvalues[i - 1]);
    EXPECT_GE(result.coveredVariance, 0.9);
    EXPECT_EQ(result.scores.size(), data.size());
}

TEST(Pca, FirstComponentSeparatesBlobs)
{
    auto data = twoBlobs(12, 8, 2);
    PcaResult result = pca(data, 0.8);
    // The first PC score must separate the two blobs by sign.
    double first_mean = 0.0, second_mean = 0.0;
    for (int i = 0; i < 12; i++)
        first_mean += result.scores[i][0];
    for (int i = 12; i < 24; i++)
        second_mean += result.scores[i][0];
    EXPECT_LT(first_mean * second_mean, 0.0);
    EXPECT_GT(std::fabs(first_mean - second_mean) / 12.0, 2.0);
}

TEST(Pca, ComponentsAreUnitVectors)
{
    auto data = twoBlobs(10, 5, 3);
    PcaResult result = pca(data, 0.95);
    for (const auto &component : result.components) {
        double norm = 0.0;
        for (double v : component)
            norm += v * v;
        EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-6);
    }
}

TEST(Pca, DenseColumnsDropsNanColumns)
{
    std::vector<std::vector<double>> rows = {
        {1.0, std::nan(""), 3.0},
        {2.0, 5.0, 6.0},
    };
    std::vector<int> kept;
    auto dense = denseColumns(rows, kept);
    ASSERT_EQ(kept.size(), 2u);
    EXPECT_EQ(kept[0], 0);
    EXPECT_EQ(kept[1], 2);
    EXPECT_EQ(dense[0].size(), 2u);
    EXPECT_EQ(dense[1][1], 6.0);
}

TEST(Pca, StandardizeMakesZeroMeanUnitVar)
{
    auto data = twoBlobs(20, 4, 4);
    standardizeColumns(data);
    for (size_t c = 0; c < data[0].size(); c++) {
        double mean = 0.0, var = 0.0;
        for (const auto &row : data)
            mean += row[c];
        mean /= data.size();
        for (const auto &row : data)
            var += (row[c] - mean) * (row[c] - mean);
        var /= data.size();
        EXPECT_NEAR(mean, 0.0, 1e-9);
        EXPECT_NEAR(var, 1.0, 1e-9);
    }
}

TEST(Cluster, TwoBlobsYieldTwoClusters)
{
    auto data = twoBlobs(8, 4, 5);
    Dendrogram tree = agglomerate(data);
    EXPECT_EQ(tree.leafCount, 16);
    EXPECT_EQ(tree.merges.size(), 15u);
    std::vector<int> labels = cutTree(tree, 2);
    // All of blob 0 shares a label, all of blob 1 shares the other.
    for (int i = 1; i < 8; i++)
        EXPECT_EQ(labels[i], labels[0]);
    for (int i = 9; i < 16; i++)
        EXPECT_EQ(labels[i], labels[8]);
    EXPECT_NE(labels[0], labels[8]);
}

TEST(Cluster, MergeHeightsNondecreasing)
{
    auto data = twoBlobs(6, 3, 6);
    Dendrogram tree = agglomerate(data);
    for (size_t i = 1; i < tree.merges.size(); i++)
        EXPECT_GE(tree.merges[i].height + 1e-9,
                  tree.merges[i - 1].height);
}

TEST(Cluster, CutToNClustersGivesNLabels)
{
    auto data = twoBlobs(8, 4, 7);
    Dendrogram tree = agglomerate(data);
    for (int k : {1, 2, 4, 8}) {
        std::vector<int> labels = cutTree(tree, k);
        int max_label = 0;
        for (int label : labels)
            max_label = std::max(max_label, label);
        EXPECT_EQ(max_label + 1, k);
    }
}

TEST(Cluster, DendrogramRendersAllLeaves)
{
    auto data = twoBlobs(3, 2, 8);
    Dendrogram tree = agglomerate(data);
    std::vector<std::string> names = {"A", "B", "C", "D", "E", "F"};
    std::string text = renderDendrogram(tree, names);
    for (const std::string &name : names)
        EXPECT_NE(text.find(name), std::string::npos) << name;
    EXPECT_NE(text.find("[h="), std::string::npos);
}

TEST(Genetic, RecoversInformativeColumns)
{
    // 4 informative columns (blob separation) + 12 noise columns.
    Rng rng(9);
    std::vector<std::vector<double>> data;
    for (int blob = 0; blob < 2; blob++) {
        for (int i = 0; i < 10; i++) {
            std::vector<double> row(16);
            for (int d = 0; d < 4; d++)
                row[d] = (blob == 0 ? -4.0 : 4.0) +
                         rng.nextRange(-1.0f, 1.0f);
            for (int d = 4; d < 16; d++)
                row[d] = rng.nextRange(-1.0f, 1.0f);
            data.push_back(std::move(row));
        }
    }
    PcaResult reference = pca(data, 0.9);
    GeneticParams params;
    params.subsetSize = 4;
    params.generations = 40;
    GeneticResult result = selectMetrics(data, reference.scores,
                                         params);
    ASSERT_EQ(result.selected.size(), 4u);
    EXPECT_GT(result.fitness, 0.65);
    // At least half of the picks are the informative columns.
    int informative = 0;
    for (int c : result.selected) {
        if (c < 4)
            informative++;
    }
    EXPECT_GE(informative, 2);
}

TEST(Genetic, Deterministic)
{
    auto data = twoBlobs(8, 10, 10);
    PcaResult reference = pca(data, 0.9);
    GeneticParams params;
    params.subsetSize = 3;
    params.generations = 20;
    GeneticResult a = selectMetrics(data, reference.scores, params);
    GeneticResult b = selectMetrics(data, reference.scores, params);
    EXPECT_EQ(a.selected, b.selected);
    EXPECT_DOUBLE_EQ(a.fitness, b.fitness);
}

TEST(Regression, ExactLinearFit)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {3, 5, 7, 9, 11}; // y = 2x + 1
    LinearFit fit = linearRegression(x, y);
    EXPECT_NEAR(fit.slope, 2.0, 1e-9);
    EXPECT_NEAR(fit.intercept, 1.0, 1e-9);
    EXPECT_NEAR(fit.r2, 1.0, 1e-9);
}

TEST(Regression, NoisyFitLowerR2)
{
    Rng rng(11);
    std::vector<double> x, y;
    for (int i = 0; i < 100; i++) {
        x.push_back(i);
        y.push_back(0.5 * i + rng.nextRange(-30.0f, 30.0f));
    }
    LinearFit fit = linearRegression(x, y);
    EXPECT_GT(fit.r2, 0.2);
    EXPECT_LT(fit.r2, 0.99);
}

TEST(Analytical, ComputeKernelPredictionIsReasonable)
{
    // A regular streaming kernel is the analytical model's home
    // turf: prediction within ~5x of measurement.
    Gpu gpu(GpuConfig::mobile());
    uint64_t buf = gpu.addressSpace().allocate(DataKind::Compute,
                                               1 << 22, "buf");
    KernelLaunch launch;
    launch.warpCount = 256;
    launch.program = [buf](WarpContext &ctx) {
        for (int i = 0; i < 4; i++) {
            ctx.load(4, [&](int lane) {
                return buf +
                       (static_cast<uint64_t>(ctx.threadIndex(lane)) +
                        i * 8192u) * 4;
            });
            ctx.alu(8);
        }
        ctx.store(4, [&](int lane) {
            return buf + ctx.threadIndex(lane) * 4ull;
        });
    };
    gpu.run(launch);
    AnalyticalModel model = evaluateHongKim(gpu);
    EXPECT_GT(model.predictedIpc, 0.0);
    EXPECT_GT(model.measuredIpc, 0.0);
    double ratio = model.predictedIpc / model.measuredIpc;
    EXPECT_GT(ratio, 0.2);
    EXPECT_LT(ratio, 5.0);
    EXPECT_GE(model.mwp, 1.0);
    EXPECT_GE(model.cwp, 1.0);
}

TEST(Kiviat, NormalizesToUnitRange)
{
    std::vector<std::string> workloads = {"A", "B", "C"};
    std::vector<std::string> axes = {"m1", "m2"};
    std::vector<std::vector<double>> data = {
        {0.0, 100.0}, {5.0, 100.0}, {10.0, 100.0}};
    KiviatChart chart = makeKiviat(workloads, axes, data);
    EXPECT_DOUBLE_EQ(chart.values[0][0], 0.0);
    EXPECT_DOUBLE_EQ(chart.values[1][0], 0.5);
    EXPECT_DOUBLE_EQ(chart.values[2][0], 1.0);
    // Constant column normalizes to 0.5.
    EXPECT_DOUBLE_EQ(chart.values[0][1], 0.5);
    std::string text = renderKiviat(chart);
    EXPECT_NE(text.find("m1"), std::string::npos);
    EXPECT_NE(text.find("A,"), std::string::npos);
}

} // namespace
} // namespace lumi
