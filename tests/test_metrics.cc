/**
 * @file
 * Tests for the metric schema and collection: the 35 + 29 + 23
 * structure of Sec. 3.4, value alignment, NaN handling for compute
 * workloads, and CSV export.
 */

#include <cmath>
#include <limits>
#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "compute/rodinia.hh"
#include "metrics/metrics.hh"
#include "rt/pipeline.hh"
#include "scene/scene_library.hh"

namespace lumi
{
namespace
{

TEST(MetricSchema, PaperGroupSizes)
{
    const auto &schema = metricSchema();
    EXPECT_EQ(schema.size(), 87u); // 35 + 29 + 23
    int rt_specific = 0;
    for (const MetricDef &def : schema) {
        if (def.rtSpecific)
            rt_specific++;
    }
    EXPECT_EQ(rt_specific, 29 + 23);
    // Both arch-dependent and arch-independent metrics exist, the
    // deliberate deviation from pure MICA the paper defends.
    int independent = 0;
    for (const MetricDef &def : schema) {
        if (def.archIndependent)
            independent++;
    }
    EXPECT_GT(independent, 10);
    EXPECT_LT(independent, static_cast<int>(schema.size()));
}

TEST(MetricSchema, NamesUniqueAndIndexed)
{
    const auto &schema = metricSchema();
    for (size_t i = 0; i < schema.size(); i++) {
        EXPECT_EQ(metricIndex(schema[i].name), static_cast<int>(i))
            << schema[i].name;
    }
    EXPECT_EQ(metricIndex("no_such_metric"), -1);
    // Table 3 characteristics must exist.
    EXPECT_GE(metricIndex("dram_row_locality"), 0);
    EXPECT_GE(metricIndex("dram_utilization"), 0);
    EXPECT_GE(metricIndex("bvh_total_depth"), 0);
    EXPECT_GE(metricIndex("rt_mem_writes_per_ray"), 0);
    EXPECT_GE(metricIndex("l1_rt_read_hit_rate"), 0);
    EXPECT_GE(metricIndex("rt_frac_tlas_leaf"), 0);
    EXPECT_GE(metricIndex("rt_frac_bvh_nodes"), 0);
    EXPECT_GE(metricIndex("rt_avg_active_cycles"), 0);
}

TEST(MetricCollect, RayTracingWorkloadIsFullyPopulated)
{
    Scene scene = buildScene(SceneId::REF, 0.25f);
    Gpu gpu(GpuConfig::mobile());
    RenderParams params;
    params.width = 16;
    params.height = 16;
    RayTracingPipeline pipeline(gpu, scene, params);
    pipeline.render(ShaderKind::AmbientOcclusion);

    AccelStats accel_stats = pipeline.accel().computeStats();
    WorkloadContext context;
    context.scene = &scene;
    context.accelStats = &accel_stats;
    context.shader = ShaderKind::AmbientOcclusion;
    context.params = params;

    MetricVector row = collectMetrics(gpu, &context);
    ASSERT_EQ(row.values.size(), metricSchema().size());
    for (size_t i = 0; i < row.values.size(); i++) {
        EXPECT_TRUE(std::isfinite(row.values[i]))
            << metricSchema()[i].name;
    }
    // Spot-check semantic values.
    EXPECT_GT(row.values[metricIndex("ipc_thread")], 0.0);
    EXPECT_EQ(row.values[metricIndex("shader_is_ao")], 1.0);
    EXPECT_EQ(row.values[metricIndex("shader_is_pt")], 0.0);
    EXPECT_EQ(row.values[metricIndex("scene_enclosed")], 1.0);
    double hit_rate = row.values[metricIndex("ray_hit_rate")];
    EXPECT_GE(hit_rate, 0.0);
    EXPECT_LE(hit_rate, 1.0);
    // Fractions of RT fetch kinds sum to ~1.
    double frac_sum =
        row.values[metricIndex("rt_frac_tlas_internal")] +
        row.values[metricIndex("rt_frac_tlas_leaf")] +
        row.values[metricIndex("rt_frac_blas_internal")] +
        row.values[metricIndex("rt_frac_blas_leaf")] +
        row.values[metricIndex("rt_frac_instance")] +
        row.values[metricIndex("rt_frac_triangle")] +
        row.values[metricIndex("rt_frac_procedural")];
    EXPECT_NEAR(frac_sum, 1.0, 1e-6);
}

TEST(MetricCollect, ComputeWorkloadHasNanRtGroups)
{
    Gpu gpu(GpuConfig::mobile());
    runComputeKernel(gpu, ComputeKernel::Nn);
    MetricVector row = collectMetrics(gpu, nullptr);
    ASSERT_EQ(row.values.size(), metricSchema().size());
    const auto &schema = metricSchema();
    for (size_t i = 0; i < schema.size(); i++) {
        if (schema[i].rtSpecific) {
            EXPECT_TRUE(std::isnan(row.values[i]))
                << schema[i].name;
        } else {
            EXPECT_TRUE(std::isfinite(row.values[i]))
                << schema[i].name;
        }
    }
}

TEST(MetricCollect, RayFractionsMatchShader)
{
    Scene scene = buildScene(SceneId::BUNNY, 0.2f);
    Gpu gpu(GpuConfig::mobile());
    RenderParams params;
    params.width = 16;
    params.height = 16;
    params.aoRays = 3;
    RayTracingPipeline pipeline(gpu, scene, params);
    pipeline.render(ShaderKind::AmbientOcclusion);
    AccelStats accel_stats = pipeline.accel().computeStats();
    WorkloadContext context;
    context.scene = &scene;
    context.accelStats = &accel_stats;
    context.shader = ShaderKind::AmbientOcclusion;
    MetricVector row = collectMetrics(gpu, &context);
    EXPECT_GT(row.values[metricIndex("rays_frac_ao")], 0.5);
    EXPECT_EQ(row.values[metricIndex("rays_frac_shadow")], 0.0);
    EXPECT_EQ(row.values[metricIndex("rays_frac_secondary")], 0.0);
}

TEST(MetricCsv, WritesHeaderAndRows)
{
    MetricVector a, b;
    a.workload = "W1";
    b.workload = "W2";
    a.values.assign(metricSchema().size(), 1.5);
    b.values.assign(metricSchema().size(), -0.25);
    std::string path = ::testing::TempDir() + "/metrics_test.csv";
    writeCsv(path, {a, b});

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header, line1, line2;
    std::getline(in, header);
    std::getline(in, line1);
    std::getline(in, line2);
    EXPECT_EQ(header.rfind("workload,", 0), 0u);
    // Header has 1 + 87 comma-separated fields.
    size_t commas = std::count(header.begin(), header.end(), ',');
    EXPECT_EQ(commas, metricSchema().size());
    EXPECT_EQ(line1.rfind("W1,", 0), 0u);
    EXPECT_EQ(line2.rfind("W2,", 0), 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace lumi

namespace lumi
{
namespace
{

TEST(MetricCsv, RoundTrip)
{
    MetricVector a;
    a.workload = "ROUND";
    a.values.assign(metricSchema().size(), 0.0);
    for (size_t i = 0; i < a.values.size(); i++)
        a.values[i] = 0.5 * static_cast<double>(i) - 3.0;
    // A NaN survives as NaN.
    a.values[metricIndex("rt_occupancy")] =
        std::numeric_limits<double>::quiet_NaN();
    std::string path = ::testing::TempDir() + "/roundtrip.csv";
    writeCsv(path, {a});
    std::vector<MetricVector> rows = readCsv(path);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].workload, "ROUND");
    ASSERT_EQ(rows[0].values.size(), a.values.size());
    for (size_t i = 0; i < a.values.size(); i++) {
        if (std::isnan(a.values[i])) {
            EXPECT_TRUE(std::isnan(rows[0].values[i]));
        } else {
            EXPECT_NEAR(rows[0].values[i], a.values[i], 1e-4);
        }
    }
    std::remove(path.c_str());
}

TEST(MetricCsv, ReadMissingFileIsEmpty)
{
    EXPECT_TRUE(readCsv("/nonexistent/never.csv").empty());
}

} // namespace
} // namespace lumi
