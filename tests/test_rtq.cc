/**
 * @file
 * Tests for the RT-cores-as-compute query subsystem (src/compute/rtq):
 * scene-generator invariants (disjoint AMR tiling, per-level inflated
 * point clouds), degenerate-ray traversal (zero-length and
 * zero-direction rays through the full BVH stack), functional
 * correctness of the PC and KNN kernels against brute force, and
 * bit-exact determinism of the simulated runs.
 */

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "bvh/accel.hh"
#include "bvh/traversal.hh"
#include "compute/rtq/rtq_pipeline.hh"
#include "compute/rtq/rtq_scene.hh"
#include "lumibench/workload.hh"
#include "math/rng.hh"

namespace lumi
{
namespace
{

constexpr float infinity = std::numeric_limits<float>::max();

RenderParams
queryParams(int queries_side = 8)
{
    RenderParams params;
    params.width = queries_side;
    params.height = queries_side;
    params.samplesPerPixel = 1;
    params.aoRays = 3;       // k
    params.maxDepth = 8;     // round cap (clamped to level count)
    params.aoRadiusScale = 0.25f;
    return params;
}

/** Number of AMR cells (or cloud spheres) containing @p p. */
int
bruteContainment(const Scene &scene, const Vec3 &p)
{
    int count = 0;
    for (const Instance &inst : scene.instances) {
        const Geometry &geom = scene.geometries[inst.geometryId];
        Vec3 local = inst.invTransform.transformPoint(p);
        if (geom.kind == Geometry::Kind::Boxes) {
            for (size_t b = 0; b < geom.boxes.count(); b++) {
                if (geom.boxes.contains(b, local))
                    count++;
            }
        } else if (geom.kind == Geometry::Kind::Procedural) {
            for (const Vec4 &s : geom.spheres.spheres) {
                if (lengthSquared(local - Vec3(s.x, s.y, s.z)) <=
                    s.w * s.w)
                    count++;
            }
        }
    }
    return count;
}

TEST(RtqScene, AmrLeavesTileDomainDisjointly)
{
    Scene scene = rtq::buildRtqScene(SceneId::AMR, 0.5f);
    ASSERT_EQ(scene.geometries.size(), 1u);
    ASSERT_EQ(scene.instances.size(), 1u);
    const Geometry &geom = scene.geometries[0];
    ASSERT_EQ(geom.kind, Geometry::Kind::Boxes);
    // Refinement produced more than the unrefined 8^depth floor of a
    // single cell, i.e. the interfaces actually cut.
    EXPECT_GT(geom.boxes.count(), 64u);

    // Every interior point lies in exactly one leaf cell (random
    // points never land on the measure-zero shared faces).
    Rng rng(2024);
    for (int i = 0; i < 500; i++) {
        Vec3 p = rng.nextInBox(Vec3(-0.999f), Vec3(0.999f));
        int covering = 0;
        for (size_t b = 0; b < geom.boxes.count(); b++) {
            if (geom.boxes.contains(b, p))
                covering++;
        }
        EXPECT_EQ(covering, 1) << "point " << i;
    }
    // Points outside the domain are in no cell.
    EXPECT_EQ(bruteContainment(scene, Vec3(1.5f, 0.0f, 0.0f)), 0);
}

TEST(RtqScene, PtsLevelsShareCentersAndDoubleRadius)
{
    Scene scene = rtq::buildRtqScene(SceneId::PTS, 0.25f);
    ASSERT_EQ(scene.geometries.size(),
              static_cast<size_t>(rtq::knnLevels));
    ASSERT_EQ(scene.instances.size(),
              static_cast<size_t>(rtq::knnLevels));
    const ProceduralSpheres &base = scene.geometries[0].spheres;
    ASSERT_GT(base.count(), 0u);
    float r0 = base.spheres[0].w;
    EXPECT_GT(r0, 0.0f);
    for (int level = 0; level < rtq::knnLevels; level++) {
        const Geometry &geom = scene.geometries[level];
        ASSERT_EQ(geom.kind, Geometry::Kind::Procedural);
        ASSERT_EQ(geom.spheres.count(), base.count());
        float radius = r0 * static_cast<float>(1 << level);
        for (size_t s = 0; s < geom.spheres.count(); s++) {
            const Vec4 &sphere = geom.spheres.spheres[s];
            EXPECT_EQ(sphere.x, base.spheres[s].x);
            EXPECT_EQ(sphere.y, base.spheres[s].y);
            EXPECT_EQ(sphere.z, base.spheres[s].z);
            EXPECT_FLOAT_EQ(sphere.w, radius);
        }
        // Instances sit at disjoint x offsets: level j at x = 8j.
        Vec3 offset = scene.instances[level]
                          .transform.transformPoint(Vec3(0.0f));
        EXPECT_FLOAT_EQ(offset.x, 8.0f * level);
        EXPECT_FLOAT_EQ(offset.y, 0.0f);
        EXPECT_FLOAT_EQ(offset.z, 0.0f);
    }
}

TEST(RtqTraversal, ZeroLengthRayHitsIffOriginInsideCell)
{
    Scene scene = rtq::buildRtqScene(SceneId::AMR, 0.25f);
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);

    Rng rng(7);
    for (int i = 0; i < 300; i++) {
        // Mix interior points with guaranteed-outside ones.
        Vec3 p = i % 4 == 0
                     ? rng.nextInBox(Vec3(1.5f), Vec3(3.0f))
                     : rng.nextInBox(Vec3(-0.999f), Vec3(0.999f));
        bool inside = bruteContainment(scene, p) > 0;
        Ray ray{p, Vec3(1.0f, 0.0f, 0.0f)};
        HitInfo hit = TraversalStateMachine::traceFunctional(
            accel, ray, false, 1e-4f, 0.0f);
        ASSERT_FALSE(std::isnan(hit.t)) << "point " << i;
        EXPECT_EQ(hit.hit, inside) << "point " << i;
        if (hit.hit)
            EXPECT_EQ(hit.t, 0.0f);
    }
}

TEST(RtqTraversal, ZeroDirectionRayIsDeterministicAndNaNFree)
{
    Scene scene = rtq::buildRtqScene(SceneId::AMR, 0.25f);
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);

    Rng rng(13);
    for (int i = 0; i < 200; i++) {
        Vec3 p = rng.nextInBox(Vec3(-1.5f), Vec3(1.5f));
        Ray ray{p, Vec3(0.0f)};
        HitInfo first = TraversalStateMachine::traceFunctional(
            accel, ray, false, 1e-4f, 0.0f);
        HitInfo second = TraversalStateMachine::traceFunctional(
            accel, ray, false, 1e-4f, 0.0f);
        ASSERT_FALSE(std::isnan(first.t));
        ASSERT_FALSE(std::isnan(second.t));
        EXPECT_EQ(first.hit, second.hit);
        EXPECT_EQ(first.t, second.t);
        // A fully degenerate ray still answers the containment
        // question: it hits exactly when the origin is in a cell.
        bool inside = bruteContainment(scene, p) > 0;
        EXPECT_EQ(first.hit, inside) << "point " << i;
    }
}

TEST(RtqPipeline, AmrPcMatchesBruteForce)
{
    Scene scene = rtq::buildRtqScene(SceneId::AMR, 0.25f);
    Gpu gpu(GpuConfig::mobile());
    rtq::RtqPipeline pipeline(gpu, scene, queryParams());
    pipeline.run(ShaderKind::PointContainment);

    const std::vector<uint32_t> &result = pipeline.containment();
    const std::vector<Vec3> &origins = pipeline.queryOrigins();
    ASSERT_EQ(result.size(), 64u);
    ASSERT_EQ(origins.size(), 64u);
    uint32_t inside = 0;
    for (size_t q = 0; q < result.size(); q++) {
        EXPECT_EQ(result[q], static_cast<uint32_t>(bruteContainment(
                                 scene, origins[q])))
            << "query " << q;
        // AMR cells are disjoint: containment is 0 or 1.
        EXPECT_LE(result[q], 1u);
        inside += result[q];
    }
    // In-domain queries land in cells; out-of-domain probes miss.
    EXPECT_GT(inside, 0u);
    EXPECT_LT(inside, 64u);

    const GpuStats &stats = gpu.stats();
    EXPECT_EQ(stats.raysByKind[static_cast<int>(RayKind::Query)],
              64u);
    EXPECT_EQ(stats.raysTraced, 64u);
    EXPECT_GT(stats.rtProceduralTests, 0u);
    // Every procedural candidate test is one queued intersection-
    // shader invocation -- the exact-accounting invariant.
    EXPECT_EQ(stats.rtProceduralTests, stats.intersectionInvocations);
    // Exact procedural-prim accounting: unique prims == cell count.
    EXPECT_EQ(pipeline.accel().computeStats().uniqueProceduralPrims,
              static_cast<uint64_t>(scene.geometries[0]
                                        .boxes.count()));
}

TEST(RtqPipeline, PtsPcCountsContainingSpheres)
{
    Scene scene = rtq::buildRtqScene(SceneId::PTS, 0.25f);
    Gpu gpu(GpuConfig::mobile());
    rtq::RtqPipeline pipeline(gpu, scene, queryParams());
    pipeline.run(ShaderKind::PointContainment);

    const std::vector<uint32_t> &result = pipeline.containment();
    const std::vector<Vec3> &origins = pipeline.queryOrigins();
    ASSERT_EQ(result.size(), 64u);
    uint32_t total = 0;
    for (size_t q = 0; q < result.size(); q++) {
        EXPECT_EQ(result[q], static_cast<uint32_t>(bruteContainment(
                                 scene, origins[q])))
            << "query " << q;
        total += result[q];
    }
    // The clustered cloud guarantees some queries sit inside level-0
    // spheres.
    EXPECT_GT(total, 0u);
}

TEST(RtqPipeline, KnnMatchesBruteForce)
{
    Scene scene = rtq::buildRtqScene(SceneId::PTS, 0.25f);
    Gpu gpu(GpuConfig::mobile());
    RenderParams params = queryParams();
    rtq::RtqPipeline pipeline(gpu, scene, params);
    pipeline.run(ShaderKind::Knn);

    const ProceduralSpheres &cloud = scene.geometries[0].spheres;
    float r0 = cloud.spheres[0].w;
    int k = params.aoRays;
    int rounds = std::min(rtq::knnLevels, params.maxDepth);
    float r_max = r0 * static_cast<float>(1 << (rounds - 1));

    const std::vector<float> &dist = pipeline.knnDistance();
    const std::vector<uint8_t> &used = pipeline.knnRounds();
    const std::vector<Vec3> &origins = pipeline.queryOrigins();
    ASSERT_EQ(dist.size(), 64u);

    int resolved = 0;
    for (size_t q = 0; q < dist.size(); q++) {
        std::vector<float> dists;
        dists.reserve(cloud.count());
        for (const Vec4 &s : cloud.spheres)
            dists.push_back(
                length(origins[q] - Vec3(s.x, s.y, s.z)));
        std::sort(dists.begin(), dists.end());
        float kth = static_cast<int>(dists.size()) >= k
                        ? dists[k - 1]
                        : infinity;
        if (kth <= r_max) {
            // Distances are computed with identical float ops in
            // the kernel, so the match is exact.
            EXPECT_EQ(dist[q], kth) << "query " << q;
            resolved++;
        } else {
            EXPECT_EQ(dist[q], infinity) << "query " << q;
            EXPECT_EQ(used[q], rounds) << "query " << q;
        }
        EXPECT_GE(used[q], 1);
        EXPECT_LE(used[q], rounds);
    }
    // Clustered queries resolve in few rounds; most queries find k.
    EXPECT_GT(resolved, 0);

    const GpuStats &stats = gpu.stats();
    // Relaunch rounds trace more query rays than there are queries.
    EXPECT_GT(stats.raysByKind[static_cast<int>(RayKind::Query)],
              64u);
    EXPECT_EQ(stats.rtProceduralTests, stats.intersectionInvocations);
}

TEST(RtqPipeline, RunsAreBitExactlyDeterministic)
{
    Scene scene = rtq::buildRtqScene(SceneId::PTS, 0.25f);
    auto once = [&] {
        Gpu gpu(GpuConfig::mobile());
        rtq::RtqPipeline pipeline(gpu, scene, queryParams());
        pipeline.run(ShaderKind::Knn);
        return std::make_tuple(gpu.stats().cycles,
                               gpu.stats().raysTraced,
                               gpu.stats().rtProceduralTests,
                               pipeline.knnDistance(),
                               pipeline.containment());
    };
    EXPECT_EQ(once(), once());
}

TEST(RtqWorkloads, IdsAndShaderSupport)
{
    std::vector<std::string> ids;
    for (const Workload &w : rtqWorkloads())
        ids.push_back(w.id());
    EXPECT_EQ(ids, (std::vector<std::string>{"AMR_PC", "PTS_PC",
                                             "PTS_KNN"}));

    // The support matrix: query scenes take only query shaders (AMR
    // has no kNN interpretation) and graphics scenes take none.
    EXPECT_TRUE(sceneSupportsShader(SceneId::AMR,
                                    ShaderKind::PointContainment));
    EXPECT_FALSE(sceneSupportsShader(SceneId::AMR, ShaderKind::Knn));
    EXPECT_FALSE(sceneSupportsShader(SceneId::AMR,
                                     ShaderKind::PathTracing));
    EXPECT_TRUE(sceneSupportsShader(SceneId::PTS, ShaderKind::Knn));
    EXPECT_FALSE(sceneSupportsShader(
        SceneId::PTS, ShaderKind::AmbientOcclusion));
    EXPECT_FALSE(sceneSupportsShader(SceneId::BUNNY,
                                     ShaderKind::PointContainment));
    // None of the query workloads leak into the paper's 46.
    for (const Workload &w : allWorkloads())
        EXPECT_FALSE(isQueryShader(w.shader)) << w.id();
}

} // namespace
} // namespace lumi
