/**
 * @file
 * Tests for the workload layer: the 46-workload enumeration, the
 * Table 2 subset, the runner end-to-end, and the report helpers.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "lumibench/report.hh"
#include "lumibench/runner.hh"
#include "lumibench/workload.hh"

namespace lumi
{
namespace
{

TEST(Workloads, FortySixUniqueWorkloads)
{
    std::vector<Workload> workloads = allWorkloads();
    EXPECT_EQ(workloads.size(), 46u);
    std::vector<std::string> ids;
    for (const Workload &w : workloads)
        ids.push_back(w.id());
    std::sort(ids.begin(), ids.end());
    EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
    // CHSNT appears exactly once (PT only).
    int chsnt = 0;
    for (const std::string &id : ids) {
        if (id.rfind("CHSNT", 0) == 0)
            chsnt++;
    }
    EXPECT_EQ(chsnt, 1);
}

TEST(Workloads, SubsetMatchesTable2)
{
    std::vector<Workload> subset = representativeSubset();
    ASSERT_EQ(subset.size(), 8u);
    std::vector<std::string> expected = {
        "SPNZA_AO", "BUNNY_AO", "WKND_PT", "SHIP_SH",
        "ROBOT_SH", "BATH_PT", "PARK_PT", "CHSNT_PT"};
    for (size_t i = 0; i < subset.size(); i++)
        EXPECT_EQ(subset[i].id(), expected[i]);
    // Every subset member is a real workload.
    std::vector<Workload> all = allWorkloads();
    for (const Workload &w : subset) {
        bool found = false;
        for (const Workload &other : all)
            found = found || other.id() == w.id();
        EXPECT_TRUE(found) << w.id();
    }
}

TEST(Workloads, GameWorkloadsAreSeparate)
{
    std::vector<Workload> games = gameWorkloads();
    EXPECT_EQ(games.size(), 9u);
    std::vector<Workload> all = allWorkloads();
    for (const Workload &g : games) {
        for (const Workload &w : all)
            EXPECT_NE(g.id(), w.id());
    }
}

TEST(Workloads, ChsntOnlySupportsPt)
{
    EXPECT_TRUE(sceneSupportsShader(SceneId::CHSNT,
                                    ShaderKind::PathTracing));
    EXPECT_FALSE(sceneSupportsShader(SceneId::CHSNT,
                                     ShaderKind::Shadow));
    EXPECT_FALSE(sceneSupportsShader(
        SceneId::CHSNT, ShaderKind::AmbientOcclusion));
    EXPECT_TRUE(sceneSupportsShader(SceneId::BUNNY,
                                    ShaderKind::Shadow));
}

TEST(Runner, EndToEndWorkload)
{
    RunOptions options;
    options.params.width = 16;
    options.params.height = 16;
    options.sceneDetail = 0.15f;
    WorkloadResult result =
        runWorkload({SceneId::REF, ShaderKind::Shadow}, options);
    EXPECT_EQ(result.id, "REF_SH");
    EXPECT_GT(result.stats.cycles, 0u);
    EXPECT_GT(result.stats.raysTraced, 0u);
    EXPECT_GT(result.ipcThread(), 0.0);
    EXPECT_EQ(result.metrics.workload, "REF_SH");
    EXPECT_EQ(result.metrics.values.size(), metricSchema().size());
    EXPECT_GT(result.accelStats.instances, 0u);
    EXPECT_FALSE(result.timeline.empty());
    EXPECT_GT(result.analytical.measuredIpc, 0.0);
}

TEST(Runner, ComputeWorkload)
{
    RunOptions options;
    WorkloadResult result = runCompute(ComputeKernel::Nn, options);
    EXPECT_EQ(result.id, "nn");
    EXPECT_GT(result.stats.instructions, 0u);
    EXPECT_EQ(result.stats.raysTraced, 0u);
    // RT metric entries are NaN for compute.
    int idx = metricIndex("rt_occupancy");
    EXPECT_TRUE(std::isnan(result.metrics.values[idx]));
}

TEST(Runner, DesktopConfigFasterThanMobile)
{
    RunOptions mobile;
    mobile.params.width = 24;
    mobile.params.height = 24;
    mobile.sceneDetail = 0.2f;
    RunOptions desktop = mobile;
    desktop.config = GpuConfig::desktop();
    Workload w{SceneId::BUNNY, ShaderKind::AmbientOcclusion};
    WorkloadResult r_mobile = runWorkload(w, mobile);
    WorkloadResult r_desktop = runWorkload(w, desktop);
    // More SMs and memory channels: fewer cycles, higher IPC.
    EXPECT_LT(r_desktop.stats.cycles, r_mobile.stats.cycles);
    EXPECT_GT(r_desktop.ipcThread(), r_mobile.ipcThread());
}

TEST(Runner, DramBandwidthScaleTakesEffect)
{
    RunOptions base;
    base.params.width = 16;
    base.params.height = 16;
    base.sceneDetail = 0.2f;
    RunOptions throttled = base;
    throttled.dramBandwidthScale = 0.25;
    Workload w{SceneId::PARTY, ShaderKind::PathTracing};
    WorkloadResult fast = runWorkload(w, base);
    WorkloadResult slow = runWorkload(w, throttled);
    // Throttled DRAM can only slow things down (or leave them equal
    // for latency-bound workloads -- the Sec. 5.3.2 observation).
    EXPECT_GE(slow.stats.cycles, fast.stats.cycles);
}

TEST(Report, TextTableAlignsColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"alpha", TextTable::num(1.5, 2)});
    table.addRow({"b", "x"});
    std::string text = table.render();
    EXPECT_NE(text.find("name"), std::string::npos);
    EXPECT_NE(text.find("alpha"), std::string::npos);
    EXPECT_NE(text.find("1.50"), std::string::npos);
    EXPECT_NE(text.find("---"), std::string::npos);
    // Banner contains the title.
    EXPECT_NE(banner("Figure 14").find("Figure 14"),
              std::string::npos);
}

TEST(RunOptions, FromEnvDefaults)
{
    // With no env overrides the defaults apply.
    unsetenv("LUMI_RES");
    unsetenv("LUMI_SPP");
    unsetenv("LUMI_DETAIL");
    unsetenv("LUMI_QUICK");
    RunOptions options = RunOptions::fromEnv();
    EXPECT_EQ(options.params.width, 96);
    EXPECT_EQ(options.params.samplesPerPixel, 2);
    EXPECT_FLOAT_EQ(options.sceneDetail, 2.0f);
    // Quick mode shrinks everything.
    setenv("LUMI_QUICK", "1", 1);
    RunOptions quick = RunOptions::fromEnv();
    EXPECT_EQ(quick.params.width, 32);
    EXPECT_LT(quick.sceneDetail, 0.5f);
    unsetenv("LUMI_QUICK");
}

} // namespace
} // namespace lumi
