/**
 * @file
 * Unit tests for the math module: vectors, matrices, AABBs, RNG and
 * sampling routines.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "math/aabb.hh"
#include "math/mat4.hh"
#include "math/rng.hh"
#include "math/sampling.hh"
#include "math/vec.hh"

namespace lumi
{
namespace
{

TEST(Vec3, Arithmetic)
{
    Vec3 a{1.0f, 2.0f, 3.0f};
    Vec3 b{4.0f, -1.0f, 0.5f};
    EXPECT_EQ(a + b, Vec3(5.0f, 1.0f, 3.5f));
    EXPECT_EQ(a - b, Vec3(-3.0f, 3.0f, 2.5f));
    EXPECT_EQ(a * 2.0f, Vec3(2.0f, 4.0f, 6.0f));
    EXPECT_EQ(2.0f * a, a * 2.0f);
    EXPECT_EQ(-a, Vec3(-1.0f, -2.0f, -3.0f));
    EXPECT_FLOAT_EQ(dot(a, b), 4.0f - 2.0f + 1.5f);
}

TEST(Vec3, CrossProductOrthogonality)
{
    Vec3 a{1.0f, 2.0f, 3.0f};
    Vec3 b{-2.0f, 0.5f, 1.0f};
    Vec3 c = cross(a, b);
    EXPECT_NEAR(dot(c, a), 0.0f, 1e-5f);
    EXPECT_NEAR(dot(c, b), 0.0f, 1e-5f);
    EXPECT_EQ(cross(Vec3(1, 0, 0), Vec3(0, 1, 0)), Vec3(0, 0, 1));
}

TEST(Vec3, NormalizeAndLength)
{
    Vec3 v{3.0f, 4.0f, 0.0f};
    EXPECT_FLOAT_EQ(length(v), 5.0f);
    EXPECT_NEAR(length(normalize(v)), 1.0f, 1e-6f);
    // Zero vector stays zero instead of producing NaN.
    Vec3 z = normalize(Vec3(0.0f));
    EXPECT_EQ(z, Vec3(0.0f));
}

TEST(Vec3, Reflect)
{
    Vec3 d = normalize(Vec3(1.0f, -1.0f, 0.0f));
    Vec3 r = reflect(d, {0.0f, 1.0f, 0.0f});
    EXPECT_NEAR(r.x, d.x, 1e-6f);
    EXPECT_NEAR(r.y, -d.y, 1e-6f);
}

TEST(Mat4, IdentityTransform)
{
    Mat4 m = Mat4::identity();
    Vec3 p{1.5f, -2.0f, 7.0f};
    EXPECT_EQ(m.transformPoint(p), p);
    EXPECT_EQ(m.transformVector(p), p);
}

TEST(Mat4, TranslateAffectsPointsNotVectors)
{
    Mat4 m = Mat4::translate({1.0f, 2.0f, 3.0f});
    EXPECT_EQ(m.transformPoint(Vec3(0.0f)), Vec3(1.0f, 2.0f, 3.0f));
    EXPECT_EQ(m.transformVector(Vec3(1.0f, 0.0f, 0.0f)),
              Vec3(1.0f, 0.0f, 0.0f));
}

TEST(Mat4, RotationPreservesLength)
{
    Mat4 m = Mat4::rotateY(0.7f) * Mat4::rotateX(-1.2f) *
             Mat4::rotateZ(2.1f);
    Vec3 v{1.0f, 2.0f, 3.0f};
    EXPECT_NEAR(length(m.transformVector(v)), length(v), 1e-5f);
}

TEST(Mat4, InverseRoundTrip)
{
    Mat4 m = Mat4::translate({3.0f, -1.0f, 2.0f}) *
             Mat4::rotateY(0.9f) * Mat4::scale({2.0f, 2.0f, 2.0f});
    Mat4 inv = m.inverse();
    Vec3 p{0.3f, 1.7f, -4.2f};
    Vec3 round = inv.transformPoint(m.transformPoint(p));
    EXPECT_NEAR(round.x, p.x, 1e-4f);
    EXPECT_NEAR(round.y, p.y, 1e-4f);
    EXPECT_NEAR(round.z, p.z, 1e-4f);
}

TEST(Mat4, CompositionOrder)
{
    // translate * scale: scaling happens first.
    Mat4 m = Mat4::translate({1.0f, 0.0f, 0.0f}) *
             Mat4::scale({2.0f, 1.0f, 1.0f});
    EXPECT_EQ(m.transformPoint(Vec3(1.0f, 0.0f, 0.0f)),
              Vec3(3.0f, 0.0f, 0.0f));
}

TEST(Aabb, ExtendAndContains)
{
    Aabb box;
    EXPECT_TRUE(box.empty());
    box.extend({1.0f, 1.0f, 1.0f});
    box.extend({-1.0f, 2.0f, 0.0f});
    EXPECT_FALSE(box.empty());
    EXPECT_TRUE(box.contains({0.0f, 1.5f, 0.5f}));
    EXPECT_FALSE(box.contains({0.0f, 3.0f, 0.5f}));
    EXPECT_FLOAT_EQ(box.extent().x, 2.0f);
}

TEST(Aabb, SurfaceArea)
{
    Aabb box;
    box.extend({0.0f, 0.0f, 0.0f});
    box.extend({2.0f, 3.0f, 4.0f});
    EXPECT_FLOAT_EQ(box.surfaceArea(),
                    2.0f * (2 * 3 + 3 * 4 + 4 * 2));
    EXPECT_EQ(box.longestAxis(), 2);
    EXPECT_FLOAT_EQ(Aabb{}.surfaceArea(), 0.0f);
}

TEST(Aabb, RayHit)
{
    Aabb box;
    box.extend({-1.0f, -1.0f, -1.0f});
    box.extend({1.0f, 1.0f, 1.0f});
    Vec3 origin{0.0f, 0.0f, -5.0f};
    Vec3 dir{0.0f, 0.0f, 1.0f};
    Vec3 inv{1e12f, 1e12f, 1.0f};
    float t;
    EXPECT_TRUE(box.hit(origin, inv, 100.0f, t));
    EXPECT_NEAR(t, 4.0f, 1e-4f);
    // Beyond t_max: no hit.
    EXPECT_FALSE(box.hit(origin, inv, 3.0f, t));
    // Pointing away: no hit.
    Vec3 inv_away{1e12f, 1e12f, -1.0f};
    EXPECT_FALSE(box.hit(origin, inv_away, 100.0f, t));
    // Origin inside the box: hit with t = 0.
    EXPECT_TRUE(box.hit({0.0f, 0.0f, 0.0f}, inv, 100.0f, t));
    EXPECT_FLOAT_EQ(t, 0.0f);
}

TEST(Aabb, Overlaps)
{
    Aabb a, b, c;
    a.extend({0.0f, 0.0f, 0.0f});
    a.extend({2.0f, 2.0f, 2.0f});
    b.extend({1.0f, 1.0f, 1.0f});
    b.extend({3.0f, 3.0f, 3.0f});
    c.extend({5.0f, 5.0f, 5.0f});
    c.extend({6.0f, 6.0f, 6.0f});
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_FALSE(a.overlaps(c));
}

TEST(Aabb, TransformedContainsAllCorners)
{
    Aabb box;
    box.extend({-1.0f, 0.0f, -2.0f});
    box.extend({1.0f, 3.0f, 2.0f});
    Mat4 m = Mat4::translate({5.0f, 0.0f, 0.0f}) * Mat4::rotateY(0.8f);
    Aabb out = box.transformed(m);
    for (int i = 0; i < 8; i++) {
        Vec3 corner{(i & 1) ? box.hi.x : box.lo.x,
                    (i & 2) ? box.hi.y : box.lo.y,
                    (i & 4) ? box.hi.z : box.lo.z};
        Vec3 p = m.transformPoint(corner);
        EXPECT_TRUE(out.contains(p));
    }
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; i++)
        EXPECT_EQ(a.nextU32(), b.nextU32());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; i++) {
        if (a.nextU32() == b.nextU32())
            same++;
    }
    EXPECT_LT(same, 4);
}

TEST(Rng, FloatRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; i++) {
        float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Rng, BoundedUniform)
{
    Rng rng(9);
    int counts[10] = {};
    for (int i = 0; i < 10000; i++) {
        uint32_t v = rng.nextBelow(10);
        ASSERT_LT(v, 10u);
        counts[v]++;
    }
    for (int c : counts) {
        EXPECT_GT(c, 700);
        EXPECT_LT(c, 1300);
    }
    EXPECT_EQ(rng.nextBelow(1), 0u);
    EXPECT_EQ(rng.nextBelow(0), 0u);
}

TEST(Rng, HashCombineSpreads)
{
    // Nearby inputs should hash to very different values.
    uint32_t a = hashCombine(1, 1);
    uint32_t b = hashCombine(1, 2);
    uint32_t c = hashCombine(2, 1);
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_NE(b, c);
}

TEST(Sampling, OnbIsOrthonormal)
{
    Rng rng(3);
    for (int i = 0; i < 50; i++) {
        Vec3 n = normalize(rng.nextInBox({-1, -1, -1}, {1, 1, 1}));
        if (lengthSquared(n) < 1e-6f)
            continue;
        Onb onb = Onb::fromNormal(n);
        EXPECT_NEAR(length(onb.tangent), 1.0f, 1e-4f);
        EXPECT_NEAR(length(onb.bitangent), 1.0f, 1e-4f);
        EXPECT_NEAR(dot(onb.tangent, onb.normal), 0.0f, 1e-4f);
        EXPECT_NEAR(dot(onb.bitangent, onb.normal), 0.0f, 1e-4f);
        EXPECT_NEAR(dot(onb.tangent, onb.bitangent), 0.0f, 1e-4f);
    }
}

TEST(Sampling, CosineHemisphereAboveSurface)
{
    Rng rng(5);
    double mean_z = 0.0;
    const int n = 2000;
    for (int i = 0; i < n; i++) {
        Vec3 d = cosineSampleHemisphere(rng.nextFloat(),
                                        rng.nextFloat());
        EXPECT_NEAR(length(d), 1.0f, 1e-3f);
        EXPECT_GE(d.z, 0.0f);
        mean_z += d.z;
    }
    // Cosine weighting gives E[z] = 2/3.
    EXPECT_NEAR(mean_z / n, 2.0 / 3.0, 0.03);
}

TEST(Sampling, UniformSphereCoversBothHemispheres)
{
    Rng rng(11);
    int above = 0;
    const int n = 2000;
    for (int i = 0; i < n; i++) {
        Vec3 d = uniformSampleSphere(rng.nextFloat(),
                                     rng.nextFloat());
        EXPECT_NEAR(length(d), 1.0f, 1e-3f);
        if (d.z > 0)
            above++;
    }
    EXPECT_GT(above, n / 2 - 150);
    EXPECT_LT(above, n / 2 + 150);
}

TEST(Sampling, ConcentricDiskInUnitDisk)
{
    Rng rng(13);
    for (int i = 0; i < 1000; i++) {
        Vec2 p = concentricSampleDisk(rng.nextFloat(),
                                      rng.nextFloat());
        EXPECT_LE(p.x * p.x + p.y * p.y, 1.0f + 1e-5f);
    }
}

} // namespace
} // namespace lumi
