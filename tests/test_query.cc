/**
 * @file
 * Query/serve layer tests: CLI-over-environment precedence for run
 * flags (the contract lumibench's flag parsing relies on), filter
 * parsing, report indexing and stat/series queries over real run
 * reports, and the HTTP router both as a pure function and over a
 * real loopback socket.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "lumibench/query.hh"
#include "lumibench/run_report.hh"
#include "lumibench/runner.hh"
#include "lumibench/serve.hh"
#include "lumibench/workload.hh"

using namespace lumi;

namespace
{

RunOptions
quickOptions()
{
    RunOptions options;
    options.params.width = 16;
    options.params.height = 16;
    options.sceneDetail = 0.15f;
    return options;
}

/** Unique fresh temp directory under the system temp root. */
std::string
freshDir(const char *tag)
{
    static std::atomic<int> counter{0};
    std::string path =
        (std::filesystem::temp_directory_path() /
         (std::string("lumi_query_") + tag + "_" +
          std::to_string(::getpid()) + "_" +
          std::to_string(counter.fetch_add(1))))
            .string();
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    return path;
}

/** Populate @p dir with two sampled single-workload reports. */
void
writeSampleReports(const std::string &dir, WorkloadResult &bunny,
                   RunOptions &options)
{
    options = quickOptions();
    options.intervalStats = 500;
    bunny = runWorkload(
        {SceneId::BUNNY, ShaderKind::AmbientOcclusion}, options);
    WorkloadResult ref =
        runWorkload({SceneId::REF, ShaderKind::Shadow}, options);
    ASSERT_TRUE(
        writeRunReport(dir + "/b_bunny.json", {bunny}, options));
    ASSERT_TRUE(
        writeRunReport(dir + "/a_ref.json", {ref}, options));
    // A foreign JSON file must be skipped, not break the scan.
    FILE *junk = std::fopen((dir + "/junk.json").c_str(), "w");
    ASSERT_NE(junk, nullptr);
    std::fputs("{\"schema\":\"other\"}", junk);
    std::fclose(junk);
}

} // namespace

TEST(RunFlags, CliFlagsWinOverEnvironment)
{
    // fromEnv picks up the environment defaults...
    ::setenv("LUMI_RES", "64", 1);
    ::setenv("LUMI_SPP", "3", 1);
    ::setenv("LUMI_INTERVAL_STATS", "123", 1);
    ::setenv("LUMI_SELF_PROFILE", "1", 1);
    RunOptions options = RunOptions::fromEnv();
    EXPECT_EQ(options.params.width, 64);
    EXPECT_EQ(options.params.samplesPerPixel, 3);
    EXPECT_EQ(options.intervalStats, 123u);
    EXPECT_TRUE(options.selfProfile);

    // ...and a CLI flag applied on top always wins. The CLI calls
    // fromEnv() first and applyRunFlag() per flag, so this ordering
    // IS the precedence contract.
    EXPECT_TRUE(applyRunFlag(options, "--res", "32"));
    EXPECT_EQ(options.params.width, 32);
    EXPECT_EQ(options.params.height, 32);
    EXPECT_TRUE(applyRunFlag(options, "--spp", "1"));
    EXPECT_EQ(options.params.samplesPerPixel, 1);
    EXPECT_TRUE(applyRunFlag(options, "--interval-stats", "250"));
    EXPECT_EQ(options.intervalStats, 250u);
    EXPECT_TRUE(applyRunFlag(options, "--detail", "0.5"));
    EXPECT_FLOAT_EQ(options.sceneDetail, 0.5f);

    // Unknown flags are not applyRunFlag's to consume.
    EXPECT_FALSE(applyRunFlag(options, "--bogus", "1"));

    ::unsetenv("LUMI_RES");
    ::unsetenv("LUMI_SPP");
    ::unsetenv("LUMI_INTERVAL_STATS");
    ::unsetenv("LUMI_SELF_PROFILE");
}

TEST(QueryFilter, ParsesKnownTermsOnly)
{
    query::QueryFilter filter;
    EXPECT_TRUE(filter.add("workload=BUNNY_AO"));
    EXPECT_TRUE(filter.add("config=mobile"));
    EXPECT_TRUE(filter.add("width=16"));
    EXPECT_FALSE(filter.add("bogus=1"));
    EXPECT_FALSE(filter.add("noequals"));
    EXPECT_FALSE(filter.add("=value"));
    EXPECT_FALSE(filter.add("workload="));
    EXPECT_EQ(filter.terms.size(), 3u);
}

TEST(QueryFilter, WorkloadGlobsMatchFamilies)
{
    query::ReportRef ref;
    auto matched = [&](const char *term, const char *id) {
        query::QueryFilter filter;
        EXPECT_TRUE(filter.add(term));
        return filter.matches(ref, id);
    };
    // Precedence: a value without '*' stays an exact compare -- a
    // literal id never widens into a prefix match.
    EXPECT_TRUE(matched("workload=PTS_KNN", "PTS_KNN"));
    EXPECT_FALSE(matched("workload=PTS", "PTS_KNN"));
    EXPECT_FALSE(matched("workload=PTS_KN", "PTS_KNN"));
    // A '*' opts into glob matching: prefix, suffix, infix, multi.
    EXPECT_TRUE(matched("workload=PTS_*", "PTS_KNN"));
    EXPECT_TRUE(matched("workload=PTS_*", "PTS_PC"));
    EXPECT_FALSE(matched("workload=PTS_*", "AMR_PC"));
    EXPECT_TRUE(matched("workload=*_PC", "AMR_PC"));
    EXPECT_TRUE(matched("workload=*", "ANYTHING"));
    EXPECT_TRUE(matched("workload=A*_P*", "AMR_PC"));
    EXPECT_FALSE(matched("workload=A*_K*", "AMR_PC"));
    EXPECT_TRUE(matched("workload=*KNN", "PTS_KNN"));
    EXPECT_FALSE(matched("workload=*KNN*X", "PTS_KNN"));
    // Conjunction: every term must match.
    query::QueryFilter both;
    EXPECT_TRUE(both.add("workload=PTS_*"));
    EXPECT_TRUE(both.add("workload=*_PC"));
    EXPECT_TRUE(both.matches(ref, "PTS_PC"));
    EXPECT_FALSE(both.matches(ref, "PTS_KNN"));
}

TEST(QueryFilter, ConfigAndSceneGlobsMatch)
{
    query::ReportRef ref;
    ref.configName = "mobile";
    auto matched = [&](const char *term, const char *id) {
        query::QueryFilter filter;
        EXPECT_TRUE(filter.add(term));
        return filter.matches(ref, id);
    };
    // config=: exact stays exact (no silent prefix widening), '*'
    // opts into globbing -- same contract as workload= (PR 8).
    EXPECT_TRUE(matched("config=mobile", "BUNNY_AO"));
    EXPECT_FALSE(matched("config=mob", "BUNNY_AO"));
    EXPECT_TRUE(matched("config=mob*", "BUNNY_AO"));
    EXPECT_TRUE(matched("config=*", "BUNNY_AO"));
    EXPECT_FALSE(matched("config=desk*", "BUNNY_AO"));
    // scene=: matches the id up to the last '_'; a compute kernel id
    // without '_' is its own scene.
    EXPECT_TRUE(matched("scene=BUNNY", "BUNNY_AO"));
    EXPECT_FALSE(matched("scene=BUNNY_AO", "BUNNY_AO"));
    EXPECT_FALSE(matched("scene=BUN", "BUNNY_AO"));
    EXPECT_TRUE(matched("scene=BUN*", "BUNNY_AO"));
    EXPECT_TRUE(matched("scene=*NY", "BUNNY_AO"));
    EXPECT_TRUE(matched("scene=bfs", "bfs"));
    EXPECT_TRUE(matched("scene=PTS", "PTS_KNN"));
    // matchesReport honors config globs for report-level pruning.
    query::QueryFilter report_level;
    EXPECT_TRUE(report_level.add("config=m*"));
    EXPECT_TRUE(report_level.matchesReport(ref));
    query::QueryFilter miss;
    EXPECT_TRUE(miss.add("config=d*"));
    EXPECT_FALSE(miss.matchesReport(ref));

    EXPECT_EQ(query::sceneOfWorkload("SPNZA_AO"), "SPNZA");
    EXPECT_EQ(query::sceneOfWorkload("PTS_KNN"), "PTS");
    EXPECT_EQ(query::sceneOfWorkload("bfs"), "bfs");
}

TEST(Query, BreakdownRowsAreConservedShares)
{
    std::string dir = freshDir("breakdown");
    WorkloadResult bunny;
    RunOptions options;
    writeSampleReports(dir, bunny, options);
    query::ReportIndex index = query::ReportIndex::scan(dir);

    std::vector<query::BreakdownRow> rows =
        query::queryBreakdown(index, {});
    ASSERT_EQ(rows.size(), 2u);
    // Sorted file-name order: a_ref.json before b_bunny.json.
    EXPECT_EQ(rows[0].workload, "REF_SH");
    EXPECT_EQ(rows[1].workload, "BUNNY_AO");
    for (const query::BreakdownRow &row : rows) {
        // Conservation: raw buckets sum to cycles x SMs, and the
        // normalized shares to 1 on both sides.
        uint64_t slots =
            row.cycles *
            static_cast<uint64_t>(options.config.numSms);
        EXPECT_EQ(row.sm.sum(), slots) << row.workload;
        EXPECT_EQ(row.rt.sum(), slots) << row.workload;
        double sm_total = 0.0, rt_total = 0.0;
        for (int b = 0; b < numSmCycleBuckets; b++)
            sm_total += row.smShare[b];
        for (int b = 0; b < numRtCycleBuckets; b++)
            rt_total += row.rtShare[b];
        EXPECT_NEAR(sm_total, 1.0, 1e-9) << row.workload;
        EXPECT_NEAR(rt_total, 1.0, 1e-9) << row.workload;
    }
    EXPECT_EQ(rows[1].cycles, bunny.stats.cycles);
    EXPECT_EQ(rows[1].sm.cycles[static_cast<int>(
                  SmCycleBucket::Issued)],
              bunny.profileSm.cycles[static_cast<int>(
                  SmCycleBucket::Issued)]);

    // Filters narrow by workload glob and by scene.
    query::QueryFilter bunny_only;
    ASSERT_TRUE(bunny_only.add("workload=BUNNY*"));
    EXPECT_EQ(query::queryBreakdown(index, bunny_only).size(), 1u);
    query::QueryFilter ref_scene;
    ASSERT_TRUE(ref_scene.add("scene=REF"));
    std::vector<query::BreakdownRow> ref_rows =
        query::queryBreakdown(index, ref_scene);
    ASSERT_EQ(ref_rows.size(), 1u);
    EXPECT_EQ(ref_rows[0].workload, "REF_SH");
    std::filesystem::remove_all(dir);
}

TEST(Query, IndexAndStatLookup)
{
    std::string dir = freshDir("stat");
    WorkloadResult bunny;
    RunOptions options;
    writeSampleReports(dir, bunny, options);

    query::ReportIndex index = query::ReportIndex::scan(dir);
    ASSERT_EQ(index.reports.size(), 2u);
    // Sorted file-name order, foreign JSON skipped.
    EXPECT_EQ(index.reports[0].file, "a_ref.json");
    EXPECT_EQ(index.reports[1].file, "b_bunny.json");
    EXPECT_EQ(index.reports[0].width, 16);
    EXPECT_EQ(index.reports[0].intervalStats, 500u);
    EXPECT_EQ(index.reports[1].workloads,
              std::vector<std::string>{"BUNNY_AO"});

    query::QueryFilter filter;
    ASSERT_TRUE(filter.add("workload=BUNNY_AO"));
    std::vector<query::StatRow> rows =
        query::queryStat(index, "gpu.cycles", filter);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].workload, "BUNNY_AO");
    // Integer counters come back with the exact source token.
    EXPECT_EQ(rows[0].token,
              std::to_string(bunny.stats.cycles));

    // Derived metrics resolve through the metrics object.
    std::vector<query::StatRow> metric_rows =
        query::queryStat(index, "ipc_thread", filter);
    ASSERT_EQ(metric_rows.size(), 1u);
    EXPECT_GT(metric_rows[0].value, 0.0);

    // An unfiltered query sees both reports.
    EXPECT_EQ(query::queryStat(index, "gpu.cycles", {}).size(),
              2u);

    // Glob filters select workload families over real reports.
    query::QueryFilter glob;
    ASSERT_TRUE(glob.add("workload=*_AO"));
    std::vector<query::StatRow> glob_rows =
        query::queryStat(index, "gpu.cycles", glob);
    ASSERT_EQ(glob_rows.size(), 1u);
    EXPECT_EQ(glob_rows[0].workload, "BUNNY_AO");
    query::QueryFilter bare;
    ASSERT_TRUE(bare.add("workload=BUNNY"));
    EXPECT_TRUE(
        query::queryStat(index, "gpu.cycles", bare).empty());
    EXPECT_TRUE(
        query::queryStat(index, "no.such.stat", {}).empty());

    // listStats covers both namespaces.
    std::vector<std::string> names =
        query::listStats(index, filter);
    EXPECT_NE(std::find(names.begin(), names.end(), "gpu.cycles"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "ipc_thread"),
              names.end());
    std::filesystem::remove_all(dir);
}

TEST(Query, SeriesDeltasSumToFinalValue)
{
    std::string dir = freshDir("series");
    WorkloadResult bunny;
    RunOptions options;
    writeSampleReports(dir, bunny, options);

    query::ReportIndex index = query::ReportIndex::scan(dir);
    query::QueryFilter filter;
    ASSERT_TRUE(filter.add("workload=BUNNY_AO"));
    std::vector<query::SeriesResult> results =
        query::querySeries(index, "rt.rays_traced", filter);
    ASSERT_EQ(results.size(), 1u);
    const query::SeriesResult &series = results[0];
    EXPECT_EQ(series.interval, 500u);
    ASSERT_FALSE(series.cycles.empty());
    ASSERT_EQ(series.values.size(), series.cycles.size());
    ASSERT_EQ(series.deltas.size(), series.cycles.size());

    uint64_t sum = 0;
    for (uint64_t delta : series.deltas)
        sum += delta;
    EXPECT_EQ(sum, series.values.back());
    EXPECT_EQ(series.values.back(), bunny.stats.raysTraced);
    EXPECT_EQ(series.cycles.back(), bunny.stats.cycles);

    EXPECT_TRUE(
        query::querySeries(index, "no.such.stat", filter).empty());
    std::filesystem::remove_all(dir);
}

TEST(Serve, RoutesRequestsWithoutSockets)
{
    std::string dir = freshDir("routes");
    WorkloadResult bunny;
    RunOptions options;
    writeSampleReports(dir, bunny, options);

    query::ReportServer server(dir);
    query::ReportServer::Response health =
        server.handle("/healthz");
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.body.find("\"reports\":2"),
              std::string::npos);

    query::ReportServer::Response idx = server.handle("/index");
    EXPECT_EQ(idx.status, 200);
    EXPECT_NE(idx.body.find("b_bunny.json"), std::string::npos);

    query::ReportServer::Response stat = server.handle(
        "/stat?name=gpu.cycles&workload=BUNNY_AO");
    EXPECT_EQ(stat.status, 200);
    EXPECT_NE(
        stat.body.find(std::to_string(bunny.stats.cycles)),
        std::string::npos);

    query::ReportServer::Response series = server.handle(
        "/series?name=rt.rays_traced&workload=BUNNY_AO");
    EXPECT_EQ(series.status, 200);
    EXPECT_NE(series.body.find("\"deltas\":["),
              std::string::npos);

    query::ReportServer::Response stats =
        server.handle("/stats?workload=BUNNY_AO");
    EXPECT_EQ(stats.status, 200);
    EXPECT_NE(stats.body.find("\"gpu.cycles\""),
              std::string::npos);

    // Error paths: missing name, traversal attempts, bad keys,
    // unknown routes.
    EXPECT_EQ(server.handle("/stat").status, 400);
    EXPECT_EQ(server.handle("/stat?name=x&bogus=1").status, 400);
    EXPECT_EQ(server.handle("/report?file=../etc/passwd").status,
              400);
    EXPECT_EQ(server.handle("/report?file=missing.json").status,
              404);
    EXPECT_EQ(server.handle("/nope").status, 404);

    // /report returns the stored bytes verbatim.
    query::ReportServer::Response report =
        server.handle("/report?file=b_bunny.json");
    EXPECT_EQ(report.status, 200);
    EXPECT_EQ(report.body, runReportJson({bunny}, options));
    std::filesystem::remove_all(dir);
}

TEST(Serve, VersionBreakdownAndViewRoutes)
{
    std::string dir = freshDir("breakroutes");
    WorkloadResult bunny;
    RunOptions options;
    writeSampleReports(dir, bunny, options);
    query::ReportServer server(dir);

    // /version pins the wire contract dashboards key off.
    query::ReportServer::Response version =
        server.handle("/version");
    EXPECT_EQ(version.status, 200);
    EXPECT_NE(version.body.find(kRunReportSchema),
              std::string::npos);
    EXPECT_NE(version.body.find(kConfigFingerprintScheme),
              std::string::npos);

    query::ReportServer::Response breakdown = server.handle(
        "/breakdown?workload=BUNNY_AO");
    EXPECT_EQ(breakdown.status, 200);
    EXPECT_NE(breakdown.body.find("\"workload\":\"BUNNY_AO\""),
              std::string::npos);
    EXPECT_NE(breakdown.body.find("\"sm_share\""),
              std::string::npos);
    EXPECT_NE(breakdown.body.find("\"busy_box\""),
              std::string::npos);
    EXPECT_EQ(breakdown.body.find("REF_SH"), std::string::npos);
    EXPECT_EQ(server.handle("/breakdown?bogus=1").status, 400);

    query::ReportServer::Response view = server.handle("/view");
    EXPECT_EQ(view.status, 200);
    EXPECT_EQ(view.contentType, "text/html");
    EXPECT_NE(view.body.find("<canvas"), std::string::npos);
    EXPECT_NE(view.body.find("/series?name="), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Serve, RouterEdgeCases)
{
    std::string dir = freshDir("edges");
    WorkloadResult bunny;
    RunOptions options;
    writeSampleReports(dir, bunny, options);
    query::ReportServer server(dir);

    // Percent-encoded paths route like their decoded forms.
    EXPECT_EQ(server.handle("/%68ealthz").status, 200);
    EXPECT_EQ(server.handle("/%62reakdown").status, 200);
    // Percent-encoded traversal still hits the guard: params decode
    // before the ".." / "/" check.
    EXPECT_EQ(
        server.handle("/report?file=%2e%2e%2fetc%2fpasswd").status,
        400);
    EXPECT_EQ(server.handle("/report?file=a%2fb.json").status, 400);
    // Unknown query keys are a client error on every filtered
    // route, not silently ignored.
    EXPECT_EQ(server.handle("/breakdown?bogus=1").status, 400);
    EXPECT_EQ(server.handle("/series?name=x&nope=2").status, 400);
    EXPECT_EQ(server.handle("/stats?scene=REF&bad=3").status, 400);
    // Errors still carry a JSON body and content type (the HTTP
    // framing adds Connection: close to every response).
    query::ReportServer::Response error =
        server.handle("/stat?name=x&bogus=1");
    EXPECT_EQ(error.status, 400);
    EXPECT_EQ(error.contentType, "application/json");
    EXPECT_NE(error.body.find("\"error\""), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Serve, AnswersOverLoopbackSocket)
{
    std::string dir = freshDir("socket");
    WorkloadResult bunny;
    RunOptions options;
    writeSampleReports(dir, bunny, options);

    query::ReportServer server(dir);
    if (!server.bind(0))
        GTEST_SKIP() << "cannot bind a loopback socket here";
    ASSERT_GT(server.port(), 0);
    std::thread pump([&] { server.serve(1); });

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(server.port()));
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char request[] = "GET /healthz HTTP/1.0\r\n\r\n";
    ASSERT_EQ(::send(fd, request, sizeof(request) - 1, 0),
              static_cast<ssize_t>(sizeof(request) - 1));
    std::string response;
    char buf[4096];
    ssize_t got;
    while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0)
        response.append(buf, static_cast<size_t>(got));
    ::close(fd);
    pump.join();

    EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
    EXPECT_NE(response.find("\"status\":\"ok\""),
              std::string::npos);
    std::filesystem::remove_all(dir);
}
