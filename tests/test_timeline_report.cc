/**
 * @file
 * Focused tests for the smaller reporting substrates: the timeline
 * (AerialVision-style sampling and CSV export), the text-table
 * renderer, and the three branches of the Hong-Kim analytical model.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "analysis/analytical.hh"
#include "gpu/gpu.hh"
#include "gpu/timeline.hh"
#include "lumibench/report.hh"

namespace lumi
{
namespace
{

TEST(Timeline, RecordsOnGrid)
{
    Timeline timeline(100);
    TimelineSample sample;
    sample.instructions = 10;
    timeline.record(0, sample);
    sample.instructions = 20;
    timeline.record(50, sample); // within interval: dropped
    sample.instructions = 30;
    timeline.record(120, sample); // crosses: recorded
    sample.instructions = 40;
    timeline.record(500, sample); // far jump: recorded once
    ASSERT_EQ(timeline.samples().size(), 3u);
    EXPECT_EQ(timeline.samples()[0].cycle, 0u);
    EXPECT_EQ(timeline.samples()[1].cycle, 120u);
    EXPECT_EQ(timeline.samples()[2].cycle, 500u);
}

TEST(Timeline, WindowsComputeDeltas)
{
    Timeline timeline(10);
    TimelineSample a;
    a.instructions = 0;
    a.l1Reads = 0;
    a.l1Misses = 0;
    a.rtWarpCycles = 0;
    timeline.record(0, a);
    TimelineSample b;
    b.instructions = 200;
    b.l1Reads = 100;
    b.l1Misses = 25;
    b.rtWarpCycles = 400;
    timeline.record(100, b);
    auto windows = timeline.windows(8);
    ASSERT_EQ(windows.size(), 1u);
    EXPECT_DOUBLE_EQ(windows[0].ipc, 2.0);
    EXPECT_DOUBLE_EQ(windows[0].l1MissRate, 0.25);
    EXPECT_DOUBLE_EQ(windows[0].rtWarpsPerUnit, 0.5);
}

TEST(Timeline, CsvExport)
{
    Timeline timeline(10);
    TimelineSample sample;
    timeline.record(0, sample);
    sample.instructions = 50;
    sample.l1Reads = 10;
    sample.l1Misses = 5;
    timeline.record(20, sample);
    std::string path = ::testing::TempDir() + "/timeline.csv";
    ASSERT_TRUE(timeline.writeCsv(path, 8));
    std::ifstream in(path);
    std::string header, row;
    std::getline(in, header);
    std::getline(in, row);
    EXPECT_EQ(header,
              "cycle_start,cycle_end,ipc,l1d_miss_rate,"
              "rt_warps_per_unit");
    EXPECT_EQ(row.rfind("0,20,2.5", 0), 0u);
    std::remove(path.c_str());
    // Unwritable path reports failure instead of crashing.
    EXPECT_FALSE(timeline.writeCsv("/nonexistent/dir/t.csv", 8));
}

TEST(Report, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(-0.5, 3), "-0.500");
    EXPECT_EQ(TextTable::num(42.0, 0), "42");
}

TEST(Report, ShortRowsArePadded)
{
    TextTable table({"a", "b", "c"});
    table.addRow({"only"});
    std::string text = table.render();
    // Renders without crashing; the missing cells are blank.
    EXPECT_NE(text.find("only"), std::string::npos);
}

// The three Hong-Kim prediction regimes, driven through real runs.

TEST(Analytical, ComputeBoundCase)
{
    // Pure ALU kernel: no memory waiting, MWP/CWP saturate, the
    // prediction tracks issue-limited execution.
    Gpu gpu(GpuConfig::mobile());
    KernelLaunch launch;
    launch.warpCount = 256;
    launch.program = [](WarpContext &ctx) { ctx.alu(64); };
    gpu.run(launch);
    AnalyticalModel model = evaluateHongKim(gpu);
    EXPECT_GT(model.predictedIpc, 0.0);
    double ratio = model.predictedIpc / model.measuredIpc;
    EXPECT_GT(ratio, 0.1);
    EXPECT_LT(ratio, 10.0);
}

TEST(Analytical, MemoryBoundCase)
{
    // Streaming misses: CWP saturates, prediction is memory-ruled.
    Gpu gpu(GpuConfig::mobile());
    uint64_t buf = gpu.addressSpace().allocate(DataKind::Compute,
                                               1 << 24, "buf");
    KernelLaunch launch;
    launch.warpCount = 128;
    launch.program = [buf](WarpContext &ctx) {
        for (int i = 0; i < 4; i++) {
            ctx.load(4, [&](int lane) {
                return buf +
                       (static_cast<uint64_t>(
                            ctx.threadIndex(lane)) *
                            4 +
                        i) *
                           4096;
            });
            ctx.alu(2);
        }
    };
    gpu.run(launch);
    AnalyticalModel model = evaluateHongKim(gpu);
    EXPECT_GT(model.cwp, model.mwp * 0.5);
    EXPECT_GT(model.memLatency,
              static_cast<double>(gpu.config().l1Latency));
}

TEST(Analytical, MultiLaunchSumsPredictions)
{
    // Two identical launches should predict ~2x one launch.
    auto predicted = [](int launches) {
        Gpu gpu(GpuConfig::mobile());
        KernelLaunch launch;
        launch.warpCount = 64;
        launch.program = [](WarpContext &ctx) { ctx.alu(32); };
        for (int i = 0; i < launches; i++)
            gpu.run(launch);
        return evaluateHongKim(gpu).predictedCycles;
    };
    double one = predicted(1);
    double two = predicted(2);
    EXPECT_NEAR(two, 2.0 * one, 0.25 * one);
}

TEST(Analytical, EmptyGpuIsZero)
{
    Gpu gpu(GpuConfig::mobile());
    AnalyticalModel model = evaluateHongKim(gpu);
    EXPECT_EQ(model.predictedIpc, 0.0);
    EXPECT_EQ(model.measuredIpc, 0.0);
}

} // namespace
} // namespace lumi
