/**
 * @file
 * RT-unit-focused tests: capacity limits, per-ray-kind accounting,
 * alternate-config latencies, and a regression guard on the Fig. 9
 * headline result (PT is the least efficient shader) -- the
 * simulator is deterministic, so these hold exactly run-to-run.
 */

#include <gtest/gtest.h>

#include "rt/pipeline.hh"
#include "scene/scene_library.hh"

namespace lumi
{
namespace
{

GpuStats
renderStats(SceneId scene_id, ShaderKind shader,
            const GpuConfig &config, int res = 24,
            float detail = 0.25f)
{
    Scene scene = buildScene(scene_id, detail);
    Gpu gpu(config);
    RenderParams params;
    params.width = res;
    params.height = res;
    RayTracingPipeline pipeline(gpu, scene, params);
    pipeline.render(shader);
    return gpu.stats();
}

TEST(RtUnit, OccupancyNeverExceedsCapacity)
{
    for (int max_warps : {2, 4, 8}) {
        GpuConfig config;
        config.rtMaxWarps = max_warps;
        GpuStats stats = renderStats(SceneId::REF,
                                     ShaderKind::AmbientOcclusion,
                                     config);
        double occupancy = stats.rtOccupancy(config.numSms);
        EXPECT_LE(occupancy, static_cast<double>(max_warps))
            << "capacity " << max_warps;
        EXPECT_GT(occupancy, 0.0);
    }
}

TEST(RtUnit, PerKindCyclesSumToTotals)
{
    GpuStats stats = renderStats(SceneId::BATH,
                                 ShaderKind::PathTracing,
                                 GpuConfig::mobile());
    uint64_t warp_sum = 0, ray_sum = 0;
    for (int k = 0; k < numRayKinds; k++) {
        warp_sum += stats.rtWarpCyclesByKind[k];
        ray_sum += stats.rtRayCyclesByKind[k];
    }
    EXPECT_EQ(warp_sum, stats.rtWarpCycles);
    EXPECT_EQ(ray_sum, stats.rtRayCycles);
    // PT renders trace primary, secondary and shadow (NEE) rays.
    EXPECT_GT(stats.rtWarpCyclesByKind[static_cast<int>(
                  RayKind::Primary)],
              0u);
    EXPECT_GT(stats.rtWarpCyclesByKind[static_cast<int>(
                  RayKind::Secondary)],
              0u);
    EXPECT_EQ(stats.rtWarpCyclesByKind[static_cast<int>(
                  RayKind::AmbientOcclusion)],
              0u);
}

TEST(RtUnit, SlowerIntersectionUnitsSlowTraversalBoundScenes)
{
    GpuConfig fast = GpuConfig::mobile();
    GpuConfig slow = GpuConfig::mobile();
    slow.rtBoxTestLatency = 32;
    slow.rtTriTestLatency = 64;
    GpuStats fast_stats = renderStats(
        SceneId::BUNNY, ShaderKind::AmbientOcclusion, fast);
    GpuStats slow_stats = renderStats(
        SceneId::BUNNY, ShaderKind::AmbientOcclusion, slow);
    EXPECT_GT(slow_stats.cycles, fast_stats.cycles);
}

TEST(RtUnit, MoreRtWarpsRaiseOccupancyCeiling)
{
    GpuConfig narrow = GpuConfig::mobile();
    narrow.rtMaxWarps = 1;
    GpuConfig wide = GpuConfig::mobile();
    wide.rtMaxWarps = 16;
    GpuStats narrow_stats = renderStats(
        SceneId::SPNZA, ShaderKind::AmbientOcclusion, narrow);
    GpuStats wide_stats = renderStats(
        SceneId::SPNZA, ShaderKind::AmbientOcclusion, wide);
    // With queuing pressure, a 1-warp unit is the bottleneck.
    EXPECT_GT(wide_stats.rtOccupancy(8),
              narrow_stats.rtOccupancy(8));
    EXPECT_LE(narrow_stats.rtOccupancy(8), 1.0);
}

TEST(RtUnit, PaperOrderingPtLeastEfficient)
{
    // The Fig. 9 headline: for a fixed scene, the PT workload has
    // lower RT-unit efficiency than the SH and AO workloads
    // (divergent bounces). Deterministic, so an exact regression.
    for (SceneId id : {SceneId::REF, SceneId::SPNZA}) {
        GpuStats pt = renderStats(id, ShaderKind::PathTracing,
                                  GpuConfig::mobile(), 32);
        GpuStats sh = renderStats(id, ShaderKind::Shadow,
                                  GpuConfig::mobile(), 32);
        GpuStats ao = renderStats(id,
                                  ShaderKind::AmbientOcclusion,
                                  GpuConfig::mobile(), 32);
        EXPECT_LT(pt.rtEfficiency(), sh.rtEfficiency())
            << sceneName(id);
        EXPECT_LT(pt.rtEfficiency(), ao.rtEfficiency())
            << sceneName(id);
        // And the same ordering in SIMT efficiency.
        EXPECT_LT(pt.simtEfficiency(), sh.simtEfficiency())
            << sceneName(id);
    }
}

TEST(RtUnit, OccupancyHighWhileEfficiencyLow)
{
    // "Deceptively high occupancy" (Sec. 5.2.1): the RT unit looks
    // busy while most ray slots are idle.
    GpuStats stats = renderStats(SceneId::SPNZA,
                                 ShaderKind::PathTracing,
                                 GpuConfig::mobile(), 48, 0.5f);
    double occupancy_frac = stats.rtOccupancy(8) / 4.0;
    EXPECT_GT(occupancy_frac, 0.6);
    EXPECT_LT(stats.rtEfficiency(), occupancy_frac);
}

} // namespace
} // namespace lumi
