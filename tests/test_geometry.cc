/**
 * @file
 * Unit tests for meshes, procedural primitives, shape builders and
 * procedural textures.
 */

#include <gtest/gtest.h>

#include "geometry/mesh.hh"
#include "geometry/shapes.hh"
#include "geometry/texture.hh"
#include "math/rng.hh"

namespace lumi
{
namespace
{

TriangleMesh
singleTriangle()
{
    TriangleMesh mesh;
    mesh.positions = {{0.0f, 0.0f, 0.0f},
                      {1.0f, 0.0f, 0.0f},
                      {0.0f, 1.0f, 0.0f}};
    mesh.indices = {0, 1, 2};
    return mesh;
}

TEST(TriangleMesh, IntersectFrontAndBarycentrics)
{
    TriangleMesh mesh = singleTriangle();
    TriangleHit hit;
    // Shoot at the centroid from +Z.
    Vec3 origin{1.0f / 3.0f, 1.0f / 3.0f, 5.0f};
    ASSERT_TRUE(mesh.intersect(0, origin, {0, 0, -1}, 1e-4f, 100.0f,
                               hit));
    EXPECT_NEAR(hit.t, 5.0f, 1e-4f);
    EXPECT_NEAR(hit.u, 1.0f / 3.0f, 1e-4f);
    EXPECT_NEAR(hit.v, 1.0f / 3.0f, 1e-4f);
}

TEST(TriangleMesh, IntersectMissesOutside)
{
    TriangleMesh mesh = singleTriangle();
    TriangleHit hit;
    EXPECT_FALSE(mesh.intersect(0, {0.9f, 0.9f, 5.0f}, {0, 0, -1},
                                1e-4f, 100.0f, hit));
    // Parallel ray.
    EXPECT_FALSE(mesh.intersect(0, {0.2f, 0.2f, 5.0f}, {1, 0, 0},
                                1e-4f, 100.0f, hit));
    // Behind t_max.
    EXPECT_FALSE(mesh.intersect(0, {0.2f, 0.2f, 5.0f}, {0, 0, -1},
                                1e-4f, 4.0f, hit));
}

TEST(TriangleMesh, BoundsAndCentroid)
{
    TriangleMesh mesh = singleTriangle();
    Aabb bounds = mesh.triangleBounds(0);
    EXPECT_EQ(bounds.lo, Vec3(0.0f, 0.0f, 0.0f));
    EXPECT_EQ(bounds.hi, Vec3(1.0f, 1.0f, 0.0f));
    Vec3 c = mesh.triangleCentroid(0);
    EXPECT_NEAR(c.x, 1.0f / 3.0f, 1e-5f);
}

TEST(TriangleMesh, FaceNormal)
{
    TriangleMesh mesh = singleTriangle();
    EXPECT_NEAR(mesh.faceNormal(0).z, 1.0f, 1e-5f);
}

TEST(TriangleMesh, AppendReindexes)
{
    TriangleMesh a = singleTriangle();
    TriangleMesh b = singleTriangle();
    b.transform(Mat4::translate({5.0f, 0.0f, 0.0f}));
    a.append(b);
    EXPECT_EQ(a.triangleCount(), 2u);
    EXPECT_EQ(a.positions.size(), 6u);
    // Second triangle's indices must point at the appended verts.
    EXPECT_EQ(a.indices[3], 3u);
    Aabb bounds = a.bounds();
    EXPECT_FLOAT_EQ(bounds.hi.x, 6.0f);
}

TEST(TriangleMesh, ComputeVertexNormalsUnit)
{
    TriangleMesh mesh = shapes::uvSphere({0, 0, 0}, 1.0f, 8, 16);
    mesh.computeVertexNormals();
    for (const Vec3 &n : mesh.normals)
        EXPECT_NEAR(length(n), 1.0f, 1e-3f);
}

TEST(ProceduralSpheres, IntersectAnalytic)
{
    ProceduralSpheres spheres;
    spheres.spheres.push_back(Vec4({0.0f, 0.0f, 0.0f}, 1.0f));
    float t;
    ASSERT_TRUE(spheres.intersect(0, {0, 0, 5}, {0, 0, -1}, 1e-4f,
                                  100.0f, t));
    EXPECT_NEAR(t, 4.0f, 1e-4f);
    // From inside: the far root.
    ASSERT_TRUE(spheres.intersect(0, {0, 0, 0}, {0, 0, -1}, 1e-4f,
                                  100.0f, t));
    EXPECT_NEAR(t, 1.0f, 1e-4f);
    // Miss.
    EXPECT_FALSE(spheres.intersect(0, {3, 0, 5}, {0, 0, -1}, 1e-4f,
                                   100.0f, t));
}

TEST(ProceduralSpheres, BoundsAndNormal)
{
    ProceduralSpheres spheres;
    spheres.spheres.push_back(Vec4({2.0f, 0.0f, 0.0f}, 0.5f));
    Aabb box = spheres.sphereBounds(0);
    EXPECT_FLOAT_EQ(box.lo.x, 1.5f);
    EXPECT_FLOAT_EQ(box.hi.x, 2.5f);
    Vec3 n = spheres.normalAt(0, {2.5f, 0.0f, 0.0f});
    EXPECT_NEAR(n.x, 1.0f, 1e-5f);
}

TEST(Shapes, GridPlaneStructure)
{
    TriangleMesh mesh = shapes::gridPlane(10.0f, 20.0f, 4, 5);
    EXPECT_EQ(mesh.positions.size(), 5u * 6u);
    EXPECT_EQ(mesh.triangleCount(), 4u * 5u * 2u);
    Aabb bounds = mesh.bounds();
    EXPECT_NEAR(bounds.extent().x, 10.0f, 1e-4f);
    EXPECT_NEAR(bounds.extent().z, 20.0f, 1e-4f);
    EXPECT_NEAR(bounds.extent().y, 0.0f, 1e-4f);
}

TEST(Shapes, BoxIsClosedAndOutwardFacing)
{
    TriangleMesh mesh = shapes::box({0, 0, 0}, {1, 1, 1});
    EXPECT_EQ(mesh.triangleCount(), 12u);
    Vec3 center{0.5f, 0.5f, 0.5f};
    for (size_t t = 0; t < mesh.triangleCount(); t++) {
        Vec3 n = mesh.faceNormal(t);
        Vec3 to_face = mesh.triangleCentroid(t) - center;
        EXPECT_GT(dot(n, to_face), 0.0f)
            << "face " << t << " points inward";
    }
}

TEST(Shapes, InvertedBoxFacesInward)
{
    TriangleMesh mesh = shapes::invertedBox({0, 0, 0}, {1, 1, 1});
    Vec3 center{0.5f, 0.5f, 0.5f};
    for (size_t t = 0; t < mesh.triangleCount(); t++) {
        Vec3 n = mesh.faceNormal(t);
        Vec3 to_face = mesh.triangleCentroid(t) - center;
        EXPECT_LT(dot(n, to_face), 0.0f);
    }
}

TEST(Shapes, SphereVerticesOnSurface)
{
    Vec3 center{1.0f, 2.0f, 3.0f};
    TriangleMesh mesh = shapes::uvSphere(center, 2.0f, 10, 20);
    for (const Vec3 &p : mesh.positions)
        EXPECT_NEAR(length(p - center), 2.0f, 1e-3f);
}

TEST(Shapes, GrassBladeIsThin)
{
    TriangleMesh blade = shapes::grassBlade({0, 0, 0}, 1.0f, 0.02f,
                                            0.3f, 0.0f);
    Aabb bounds = blade.bounds();
    // Tall relative to its width: the long-and-thin stress property.
    float height = bounds.extent().y;
    float width = std::min(bounds.extent().x, bounds.extent().z);
    EXPECT_GT(height / std::max(width, 1e-6f), 5.0f);
}

TEST(Shapes, RopeSpansEndpoints)
{
    Vec3 from{0, 0, 0}, to{3, 4, 0};
    TriangleMesh rope = shapes::rope(from, to, 0.05f, 6, 8);
    EXPECT_GT(rope.triangleCount(), 0u);
    Aabb bounds = rope.bounds();
    EXPECT_LT(bounds.lo.y, 0.1f);
    EXPECT_GT(bounds.hi.y, 3.9f);
    // Degenerate rope returns an empty mesh instead of NaNs.
    TriangleMesh degenerate = shapes::rope(from, from, 0.05f, 6, 8);
    EXPECT_EQ(degenerate.triangleCount(), 0u);
}

TEST(Shapes, TexturedQuadUvs)
{
    TriangleMesh quad = shapes::texturedQuad({0, 0, 0}, {2, 0, 0},
                                             {0, 2, 0});
    EXPECT_EQ(quad.triangleCount(), 2u);
    ASSERT_EQ(quad.uvs.size(), 4u);
    Vec2 uv = quad.uvAt(0, 0.5f, 0.25f);
    EXPECT_GE(uv.x, 0.0f);
    EXPECT_LE(uv.x, 1.0f);
}

TEST(Shapes, BlobStaysNearRadius)
{
    Rng rng(1);
    Vec3 center{0, 5, 0};
    TriangleMesh blob = shapes::blob(center, 2.0f, 8, 0.2f, rng);
    for (const Vec3 &p : blob.positions) {
        float r = length(p - center);
        EXPECT_GT(r, 2.0f * 0.7f);
        EXPECT_LT(r, 2.0f * 1.3f);
    }
}

TEST(Texture, CheckerAlternates)
{
    Texture tex(Texture::Kind::Checker, 64, 64, {1, 1, 1}, {0, 0, 0},
                2.0f);
    Vec4 a = tex.sample(0.1f, 0.1f);
    Vec4 b = tex.sample(0.6f, 0.1f);
    EXPECT_NE(a.x, b.x);
    EXPECT_FLOAT_EQ(a.w, 1.0f);
}

TEST(Texture, LeafMaskHasTransparency)
{
    Texture tex(Texture::Kind::LeafMask, 128, 128, {0.2f, 0.5f, 0.1f},
                {0.4f, 0.7f, 0.2f});
    // Center is leaf, far corner is cut away.
    EXPECT_FLOAT_EQ(tex.sample(0.5f, 0.5f).w, 1.0f);
    EXPECT_FLOAT_EQ(tex.sample(0.02f, 0.02f).w, 0.0f);
    // The mask must have both opaque and transparent texels overall.
    int opaque = 0, total = 0;
    for (int y = 0; y < 16; y++) {
        for (int x = 0; x < 16; x++) {
            total++;
            if (tex.sample((x + 0.5f) / 16, (y + 0.5f) / 16).w > 0.5f)
                opaque++;
        }
    }
    EXPECT_GT(opaque, 0);
    EXPECT_LT(opaque, total);
}

TEST(Texture, TexelOffsetInRange)
{
    Texture tex(Texture::Kind::Noise, 32, 16, {0, 0, 0}, {1, 1, 1});
    EXPECT_EQ(tex.dataBytes(), 32u * 16u * 4u);
    EXPECT_LT(tex.texelOffset(0.999f, 0.999f), tex.dataBytes());
    EXPECT_EQ(tex.texelOffset(0.0f, 0.0f), 0u);
    // Wrapping keeps offsets valid.
    EXPECT_LT(tex.texelOffset(7.3f, -2.9f), tex.dataBytes());
}

TEST(Texture, SamplingDeterministic)
{
    Texture tex(Texture::Kind::Marble, 64, 64, {0.9f, 0.9f, 0.9f},
                {0.5f, 0.5f, 0.5f});
    Vec4 a = tex.sample(0.3f, 0.7f);
    Vec4 b = tex.sample(0.3f, 0.7f);
    EXPECT_EQ(a.x, b.x);
    EXPECT_EQ(a.y, b.y);
}

} // namespace
} // namespace lumi
