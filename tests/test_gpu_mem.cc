/**
 * @file
 * Tests for the memory hierarchy: caches (LRU, MSHR-style pending
 * hits, associativity), DRAM (row buffer, queueing, bandwidth knob),
 * the address space and the combined MemSystem.
 */

#include <gtest/gtest.h>

#include "gpu/address_space.hh"
#include "gpu/cache.hh"
#include "gpu/config.hh"
#include "gpu/dram.hh"
#include "gpu/mem_system.hh"

namespace lumi
{
namespace
{

TEST(Cache, HitAfterFill)
{
    Cache cache(1024, 128, 2, 10);
    EXPECT_EQ(cache.probe(0, 0).outcome, CacheProbe::Outcome::Miss);
    cache.fill(0, 0, 5);
    EXPECT_EQ(cache.probe(0, 10).outcome, CacheProbe::Outcome::Hit);
    EXPECT_EQ(cache.stats.reads, 2u);
    EXPECT_EQ(cache.stats.readMisses, 1u);
    EXPECT_EQ(cache.stats.readHits, 1u);
}

TEST(Cache, PendingHitBeforeFillLands)
{
    Cache cache(1024, 128, 2, 10);
    cache.probe(0, 0);
    cache.fill(0, 0, 100); // data arrives at cycle 100
    CacheProbe probe = cache.probe(0, 50);
    EXPECT_EQ(probe.outcome, CacheProbe::Outcome::PendingHit);
    EXPECT_EQ(probe.validAt, 100u);
    // After the fill lands it is a plain hit.
    EXPECT_EQ(cache.probe(0, 200).outcome,
              CacheProbe::Outcome::Hit);
}

TEST(Cache, LruEviction)
{
    // 2 ways, 128B lines, 256B total -> one set of 2 ways.
    Cache cache(256, 128, 2, 10);
    cache.fill(0, 0, 0);
    cache.fill(128 * 1, 1, 1); // different set? no: set = line % sets
    // With 1 set, line 0 and line 1 share it; add a third.
    cache.probe(0, 10);        // touch line 0 (more recent)
    cache.fill(128 * 2, 20, 20);
    // Line 1 (LRU) must have been evicted.
    EXPECT_EQ(cache.probe(128 * 1, 30).outcome,
              CacheProbe::Outcome::Miss);
    EXPECT_EQ(cache.probe(0, 31).outcome, CacheProbe::Outcome::Hit);
    EXPECT_EQ(cache.probe(128 * 2, 32).outcome,
              CacheProbe::Outcome::Hit);
}

TEST(Cache, FullyAssociativeUsesWholeCapacity)
{
    // ways = 0 selects fully associative: 8 lines.
    Cache cache(1024, 128, 0, 10);
    for (uint64_t i = 0; i < 8; i++)
        cache.fill(i * 128, i, i);
    for (uint64_t i = 0; i < 8; i++) {
        EXPECT_EQ(cache.probe(i * 128, 100 + i).outcome,
                  CacheProbe::Outcome::Hit)
            << "line " << i;
    }
    // A set-associative cache with pathological mapping would have
    // evicted; fully associative keeps all 8.
    cache.fill(8 * 128, 200, 200);
    int hits = 0;
    for (uint64_t i = 0; i <= 8; i++) {
        if (cache.probe(i * 128, 300 + i).outcome ==
            CacheProbe::Outcome::Hit) {
            hits++;
        }
    }
    EXPECT_EQ(hits, 8);
}

TEST(Cache, WriteProbeNoAllocate)
{
    Cache cache(1024, 128, 2, 10);
    EXPECT_FALSE(cache.writeProbe(0, 0));
    EXPECT_EQ(cache.stats.writeMisses, 1u);
    // Write miss does not install the line.
    EXPECT_EQ(cache.probe(0, 1).outcome, CacheProbe::Outcome::Miss);
    cache.fill(0, 2, 2);
    EXPECT_TRUE(cache.writeProbe(0, 10));
}

TEST(Dram, RowBufferHitsAreFaster)
{
    GpuConfig config;
    Dram dram(config);
    Dram::Result first = dram.read(0, 0, 128);
    EXPECT_FALSE(first.rowHit);
    // Same row, later: hit, shorter latency.
    Dram::Result second = dram.read(256, first.readyCycle, 128);
    EXPECT_TRUE(second.rowHit);
    uint64_t first_latency = first.readyCycle;
    uint64_t second_latency = second.readyCycle - first.readyCycle;
    EXPECT_LT(second_latency, first_latency);
    EXPECT_EQ(dram.stats().accesses, 2u);
    EXPECT_EQ(dram.stats().rowHits, 1u);
}

TEST(Dram, BankConflictQueues)
{
    GpuConfig config;
    Dram dram(config);
    // Two concurrent requests to the same bank+row region serialize.
    Dram::Result a = dram.read(0, 0, 128);
    Dram::Result b = dram.read(config.dramRowBytes *
                                   config.dramBanksPerChannel *
                                   config.dramChannels,
                               0, 128);
    // b maps to the same channel/bank (row stride x banks x chans)
    // but a different row: it must wait and row-miss.
    EXPECT_FALSE(b.rowHit);
    EXPECT_GT(b.readyCycle, a.readyCycle);
}

TEST(Dram, ChannelsServeInParallel)
{
    GpuConfig config;
    Dram dram(config);
    // Lines 0 and 1 interleave across channels.
    Dram::Result a = dram.read(0, 0, 128);
    Dram::Result b = dram.read(128, 0, 128);
    EXPECT_EQ(a.readyCycle, b.readyCycle);
}

TEST(Dram, BandwidthScaleChangesTransferTime)
{
    GpuConfig config;
    Dram slow(config), fast(config);
    fast.setBandwidthScale(2.0);
    uint64_t t_slow = slow.read(0, 0, 1024).readyCycle;
    uint64_t t_fast = fast.read(0, 0, 1024).readyCycle;
    EXPECT_LT(t_fast, t_slow);
}

TEST(Dram, UtilizationBelowEfficiency)
{
    GpuConfig config;
    Dram dram(config);
    uint64_t cycle = 0;
    for (int i = 0; i < 64; i++) {
        // Sparse accesses: long idle gaps.
        dram.read(static_cast<uint64_t>(i) * 4096, cycle, 128);
        cycle += 5000;
    }
    const DramStats &stats = dram.stats();
    EXPECT_GT(stats.efficiency(), stats.utilization(cycle));
    EXPECT_LE(stats.efficiency(), 1.0);
}

TEST(AddressSpace, AllocateAndClassify)
{
    AddressSpace space;
    uint64_t a = space.allocate(DataKind::TlasNode, 1000, "tlas");
    uint64_t b = space.allocate(DataKind::Texture, 500, "tex");
    EXPECT_EQ(a % 128, 0u);
    EXPECT_GE(b, a + 1000);
    EXPECT_EQ(space.kindOf(a), DataKind::TlasNode);
    EXPECT_EQ(space.kindOf(a + 999), DataKind::TlasNode);
    EXPECT_EQ(space.kindOf(b + 10), DataKind::Texture);
    // Unregistered addresses default to Compute.
    EXPECT_EQ(space.kindOf(1), DataKind::Compute);
}

TEST(AddressSpace, RegisterExternalRange)
{
    AddressSpace space;
    uint64_t base = space.reserve(4096);
    space.registerRange(base, 1024, DataKind::BlasNode, "blas");
    space.registerRange(base + 1024, 1024, DataKind::Triangle,
                        "tris");
    EXPECT_EQ(space.kindOf(base + 100), DataKind::BlasNode);
    EXPECT_EQ(space.kindOf(base + 1500), DataKind::Triangle);
    // Later allocations do not overlap the reserved block.
    uint64_t next = space.allocate(DataKind::Local, 64, "x");
    EXPECT_GE(next, base + 2048);
}

TEST(MemSystem, HitLatencyOrdering)
{
    GpuConfig config;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Compute, 1 << 20, "buf");
    MemSystem mem(config, space);

    MemResult cold = mem.read(0, 0, addr, 4, false);
    EXPECT_FALSE(cold.l1Hit);
    EXPECT_TRUE(cold.reachedDram);
    // Warm L1 hit is much faster.
    uint64_t warm_start = cold.readyCycle + 10;
    MemResult warm = mem.read(0, warm_start, addr, 4, false);
    EXPECT_TRUE(warm.l1Hit);
    EXPECT_EQ(warm.readyCycle, warm_start + config.l1Latency);
    EXPECT_LT(warm.readyCycle - warm_start,
              cold.readyCycle - 0);
}

TEST(MemSystem, L2SharedAcrossSms)
{
    GpuConfig config;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Compute, 4096, "buf");
    MemSystem mem(config, space);
    MemResult first = mem.read(0, 0, addr, 4, false);
    // SM 1 misses its own L1 but hits the shared L2.
    MemResult second = mem.read(1, first.readyCycle + 10, addr, 4,
                                false);
    EXPECT_FALSE(second.l1Hit);
    EXPECT_FALSE(second.reachedDram);
}

TEST(MemSystem, ColdMissClassification)
{
    GpuConfig config;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Compute, 1 << 20, "buf");
    MemSystem mem(config, space);
    mem.read(0, 0, addr, 4, false);
    mem.read(0, 0, addr + 4096, 4, false);
    EXPECT_EQ(mem.l1Shader().coldMisses, 2u);
    // Evict-free re-read is not cold even if it misses later; touch
    // the same line from another SM: miss but not cold.
    mem.read(1, 100, addr, 4, false);
    EXPECT_EQ(mem.l1Shader().coldMisses, 2u);
    EXPECT_EQ(mem.l1Shader().misses, 3u);
}

TEST(MemSystem, RtAndShaderCountersSeparate)
{
    GpuConfig config;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::BlasNode, 4096, "blas");
    MemSystem mem(config, space);
    mem.read(0, 0, addr, 32, true);
    mem.read(0, 0, addr + 2048, 32, false);
    EXPECT_EQ(mem.l1Rt().reads, 1u);
    EXPECT_EQ(mem.l1Shader().reads, 1u);
    EXPECT_EQ(mem.kindReads()[static_cast<int>(DataKind::BlasNode)],
              2u);
}

TEST(MemSystem, MultiLineAccessCountsSegments)
{
    GpuConfig config;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Compute, 4096, "buf");
    MemSystem mem(config, space);
    // 256B spanning two lines -> two L1 accesses.
    mem.read(0, 0, addr, 256, false);
    EXPECT_EQ(mem.l1Shader().reads, 2u);
}

TEST(MemSystem, WriteAllocatesInBothLevels)
{
    GpuConfig config;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Local, 4096, "local");
    MemSystem mem(config, space);
    mem.write(0, 0, addr, 32, false);
    uint64_t first_dram_writes = mem.dram().stats().writeBytes;
    EXPECT_GT(first_dram_writes, 0u);
    // Second write to the same line coalesces in the caches.
    mem.write(0, 1000, addr, 32, false);
    EXPECT_EQ(mem.dram().stats().writeBytes, first_dram_writes);
    // The writing SM reads its own store back from the L1.
    MemResult read = mem.read(0, 2000, addr, 4, false);
    EXPECT_TRUE(read.l1Hit);
    // Another SM misses its L1 but hits the shared L2.
    MemResult other = mem.read(1, 3000, addr, 4, false);
    EXPECT_FALSE(other.l1Hit);
    EXPECT_FALSE(other.reachedDram);
}

} // namespace
} // namespace lumi
