/**
 * @file
 * Tests for the memory hierarchy: caches (LRU, MSHR-style pending
 * hits, associativity), DRAM (row buffer, queueing, bandwidth knob),
 * the address space and the clocked request/port MemSystem --
 * including backpressure (MSHR exhaustion, port conflicts), fill/free
 * conservation, the write-policy knob and the infinite-resources
 * golden timings that anchor the characterization figures.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "gpu/address_space.hh"
#include "gpu/cache.hh"
#include "gpu/config.hh"
#include "gpu/dram.hh"
#include "gpu/mem_system.hh"
#include "lumibench/runner.hh"
#include "lumibench/workload.hh"
#include "rt/pipeline.hh"
#include "scene/scene_library.hh"

namespace lumi
{
namespace
{

MemIssue
read(MemSystem &mem, int sm, uint64_t cycle, uint64_t addr,
     uint32_t bytes, bool rt)
{
    MemRequest req;
    req.sm = sm;
    req.cycle = cycle;
    req.addr = addr;
    req.bytes = bytes;
    req.rt = rt;
    return mem.issueRead(req);
}

MemIssue
write(MemSystem &mem, int sm, uint64_t cycle, uint64_t addr,
      uint32_t bytes, bool rt)
{
    MemRequest req;
    req.sm = sm;
    req.cycle = cycle;
    req.addr = addr;
    req.bytes = bytes;
    req.rt = rt;
    return mem.issueWrite(req);
}

TEST(Cache, HitAfterFill)
{
    Cache cache(1024, 128, 2, 10);
    EXPECT_EQ(cache.probe(0, 0).outcome, CacheProbe::Outcome::Miss);
    cache.fill(0, 0, 5);
    EXPECT_EQ(cache.probe(0, 10).outcome, CacheProbe::Outcome::Hit);
    EXPECT_EQ(cache.stats.reads, 2u);
    EXPECT_EQ(cache.stats.readMisses, 1u);
    EXPECT_EQ(cache.stats.readHits, 1u);
}

TEST(Cache, PendingHitBeforeFillLands)
{
    Cache cache(1024, 128, 2, 10);
    cache.probe(0, 0);
    cache.fill(0, 0, 100); // data arrives at cycle 100
    CacheProbe probe = cache.probe(0, 50);
    EXPECT_EQ(probe.outcome, CacheProbe::Outcome::PendingHit);
    EXPECT_EQ(probe.validAt, 100u);
    // After the fill lands it is a plain hit.
    EXPECT_EQ(cache.probe(0, 200).outcome,
              CacheProbe::Outcome::Hit);
}

TEST(Cache, PeekHasNoSideEffects)
{
    Cache cache(1024, 128, 2, 10);
    cache.fill(0, 0, 50);
    CacheStats before = cache.stats;
    EXPECT_EQ(cache.peek(0, 10).outcome,
              CacheProbe::Outcome::PendingHit);
    EXPECT_EQ(cache.peek(0, 60).outcome, CacheProbe::Outcome::Hit);
    EXPECT_EQ(cache.peek(128, 60).outcome,
              CacheProbe::Outcome::Miss);
    // No stat moved and no LRU state was touched.
    EXPECT_EQ(cache.stats.reads, before.reads);
    EXPECT_EQ(cache.stats.readHits, before.readHits);
    EXPECT_EQ(cache.stats.readMisses, before.readMisses);
}

TEST(Cache, LruEviction)
{
    // 2 ways, 128B lines, 256B total -> one set of 2 ways.
    Cache cache(256, 128, 2, 10);
    cache.fill(0, 0, 0);
    cache.fill(128 * 1, 1, 1); // different set? no: set = line % sets
    // With 1 set, line 0 and line 1 share it; add a third.
    cache.probe(0, 10);        // touch line 0 (more recent)
    cache.fill(128 * 2, 20, 20);
    // Line 1 (LRU) must have been evicted.
    EXPECT_EQ(cache.probe(128 * 1, 30).outcome,
              CacheProbe::Outcome::Miss);
    EXPECT_EQ(cache.probe(0, 31).outcome, CacheProbe::Outcome::Hit);
    EXPECT_EQ(cache.probe(128 * 2, 32).outcome,
              CacheProbe::Outcome::Hit);
}

TEST(Cache, FullyAssociativeUsesWholeCapacity)
{
    // ways = 0 selects fully associative: 8 lines.
    Cache cache(1024, 128, 0, 10);
    for (uint64_t i = 0; i < 8; i++)
        cache.fill(i * 128, i, i);
    for (uint64_t i = 0; i < 8; i++) {
        EXPECT_EQ(cache.probe(i * 128, 100 + i).outcome,
                  CacheProbe::Outcome::Hit)
            << "line " << i;
    }
    // A set-associative cache with pathological mapping would have
    // evicted; fully associative keeps all 8.
    cache.fill(8 * 128, 200, 200);
    int hits = 0;
    for (uint64_t i = 0; i <= 8; i++) {
        if (cache.probe(i * 128, 300 + i).outcome ==
            CacheProbe::Outcome::Hit) {
            hits++;
        }
    }
    EXPECT_EQ(hits, 8);
}

TEST(Cache, WriteProbeNoAllocate)
{
    Cache cache(1024, 128, 2, 10);
    EXPECT_FALSE(cache.writeProbe(0, 0));
    EXPECT_EQ(cache.stats.writeMisses, 1u);
    // Write miss does not install the line by itself; the owning
    // MemSystem decides per GpuConfig::writePolicy.
    EXPECT_EQ(cache.probe(0, 1).outcome, CacheProbe::Outcome::Miss);
    cache.fill(0, 2, 2);
    EXPECT_TRUE(cache.writeProbe(0, 10));
}

TEST(Dram, RowBufferHitsAreFaster)
{
    GpuConfig config;
    Dram dram(config);
    Dram::Result first = dram.read(0, 0, 128);
    EXPECT_FALSE(first.rowHit);
    // Same row, later: hit, shorter latency.
    Dram::Result second = dram.read(256, first.readyCycle, 128);
    EXPECT_TRUE(second.rowHit);
    uint64_t first_latency = first.readyCycle;
    uint64_t second_latency = second.readyCycle - first.readyCycle;
    EXPECT_LT(second_latency, first_latency);
    EXPECT_EQ(dram.stats().accesses, 2u);
    EXPECT_EQ(dram.stats().rowHits, 1u);
}

TEST(Dram, BankConflictQueues)
{
    GpuConfig config;
    Dram dram(config);
    // Two concurrent requests to the same bank+row region serialize.
    Dram::Result a = dram.read(0, 0, 128);
    Dram::Result b = dram.read(config.dramRowBytes *
                                   config.dramBanksPerChannel *
                                   config.dramChannels,
                               0, 128);
    // b maps to the same channel/bank (row stride x banks x chans)
    // but a different row: it must wait and row-miss.
    EXPECT_FALSE(b.rowHit);
    EXPECT_GT(b.readyCycle, a.readyCycle);
}

TEST(Dram, ChannelsServeInParallel)
{
    GpuConfig config;
    Dram dram(config);
    // Lines 0 and 1 interleave across channels.
    Dram::Result a = dram.read(0, 0, 128);
    Dram::Result b = dram.read(128, 0, 128);
    EXPECT_EQ(a.readyCycle, b.readyCycle);
}

TEST(Dram, BandwidthScaleChangesTransferTime)
{
    GpuConfig config;
    Dram slow(config), fast(config);
    fast.setBandwidthScale(2.0);
    uint64_t t_slow = slow.read(0, 0, 1024).readyCycle;
    uint64_t t_fast = fast.read(0, 0, 1024).readyCycle;
    EXPECT_LT(t_fast, t_slow);
}

TEST(Dram, UtilizationBelowEfficiency)
{
    GpuConfig config;
    Dram dram(config);
    uint64_t cycle = 0;
    for (int i = 0; i < 64; i++) {
        // Sparse accesses: long idle gaps.
        dram.read(static_cast<uint64_t>(i) * 4096, cycle, 128);
        cycle += 5000;
    }
    const DramStats &stats = dram.stats();
    EXPECT_GT(stats.efficiency(), stats.utilization(cycle));
    EXPECT_LE(stats.efficiency(), 1.0);
}

TEST(AddressSpace, AllocateAndClassify)
{
    AddressSpace space;
    uint64_t a = space.allocate(DataKind::TlasNode, 1000, "tlas");
    uint64_t b = space.allocate(DataKind::Texture, 500, "tex");
    EXPECT_EQ(a % 128, 0u);
    EXPECT_GE(b, a + 1000);
    EXPECT_EQ(space.kindOf(a), DataKind::TlasNode);
    EXPECT_EQ(space.kindOf(a + 999), DataKind::TlasNode);
    EXPECT_EQ(space.kindOf(b + 10), DataKind::Texture);
    // Unregistered addresses default to Compute.
    EXPECT_EQ(space.kindOf(1), DataKind::Compute);
}

TEST(AddressSpace, RegisterExternalRange)
{
    AddressSpace space;
    uint64_t base = space.reserve(4096);
    space.registerRange(base, 1024, DataKind::BlasNode, "blas");
    space.registerRange(base + 1024, 1024, DataKind::Triangle,
                        "tris");
    EXPECT_EQ(space.kindOf(base + 100), DataKind::BlasNode);
    EXPECT_EQ(space.kindOf(base + 1500), DataKind::Triangle);
    // Later allocations do not overlap the reserved block.
    uint64_t next = space.allocate(DataKind::Local, 64, "x");
    EXPECT_GE(next, base + 2048);
}

TEST(MemSystem, HitLatencyOrdering)
{
    GpuConfig config;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Compute, 1 << 20, "buf");
    MemSystem mem(config, space);

    MemIssue cold = read(mem, 0, 0, addr, 4, false);
    EXPECT_TRUE(cold.accepted);
    EXPECT_FALSE(cold.l1Hit);
    EXPECT_TRUE(cold.reachedDram);
    // Warm L1 hit is much faster.
    uint64_t warm_start = cold.readyCycle + 10;
    MemIssue warm = read(mem, 0, warm_start, addr, 4, false);
    EXPECT_TRUE(warm.l1Hit);
    EXPECT_EQ(warm.readyCycle, warm_start + config.l1Latency);
    EXPECT_LT(warm.readyCycle - warm_start,
              cold.readyCycle - 0);
}

TEST(MemSystem, L2SharedAcrossSms)
{
    GpuConfig config;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Compute, 4096, "buf");
    MemSystem mem(config, space);
    MemIssue first = read(mem, 0, 0, addr, 4, false);
    // SM 1 misses its own L1 but hits the shared L2.
    MemIssue second = read(mem, 1, first.readyCycle + 10, addr, 4,
                           false);
    EXPECT_FALSE(second.l1Hit);
    EXPECT_FALSE(second.reachedDram);
}

TEST(MemSystem, ColdMissClassification)
{
    GpuConfig config;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Compute, 1 << 20, "buf");
    MemSystem mem(config, space);
    read(mem, 0, 0, addr, 4, false);
    read(mem, 0, 0, addr + 4096, 4, false);
    EXPECT_EQ(mem.l1Shader().coldMisses, 2u);
    // Evict-free re-read is not cold even if it misses later; touch
    // the same line from another SM: miss but not cold.
    read(mem, 1, 100, addr, 4, false);
    EXPECT_EQ(mem.l1Shader().coldMisses, 2u);
    EXPECT_EQ(mem.l1Shader().misses, 3u);
}

TEST(MemSystem, RtAndShaderCountersSeparate)
{
    GpuConfig config;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::BlasNode, 4096, "blas");
    MemSystem mem(config, space);
    read(mem, 0, 0, addr, 32, true);
    read(mem, 0, 0, addr + 2048, 32, false);
    EXPECT_EQ(mem.l1Rt().reads, 1u);
    EXPECT_EQ(mem.l1Shader().reads, 1u);
    EXPECT_EQ(mem.kindReads()[static_cast<int>(DataKind::BlasNode)],
              2u);
}

TEST(MemSystem, MultiLineAccessCountsSegments)
{
    GpuConfig config;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Compute, 4096, "buf");
    MemSystem mem(config, space);
    // 256B spanning two lines -> two L1 accesses.
    read(mem, 0, 0, addr, 256, false);
    EXPECT_EQ(mem.l1Shader().reads, 2u);
}

TEST(MemSystem, PerSmCountersSumToAggregate)
{
    GpuConfig config;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Compute, 1 << 20, "buf");
    MemSystem mem(config, space);
    read(mem, 0, 0, addr, 4, false);
    read(mem, 1, 0, addr + 4096, 4, false);
    read(mem, 1, 50, addr + 4096, 4, false);
    read(mem, 2, 0, addr + 8192, 4, true);
    EXPECT_EQ(mem.l1Shader(0).reads, 1u);
    EXPECT_EQ(mem.l1Shader(1).reads, 2u);
    EXPECT_EQ(mem.l1Rt(2).reads, 1u);
    uint64_t shader_sum = 0, rt_sum = 0;
    for (int sm = 0; sm < config.numSms; sm++) {
        shader_sum += mem.l1Shader(sm).reads;
        rt_sum += mem.l1Rt(sm).reads;
    }
    EXPECT_EQ(shader_sum, mem.l1Shader().reads);
    EXPECT_EQ(rt_sum, mem.l1Rt().reads);
    mem.drainAll(); // runs the per-SM == aggregate invariant too
}

TEST(MemSystem, WriteAllocatesInBothLevels)
{
    GpuConfig config;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Local, 4096, "local");
    MemSystem mem(config, space);
    write(mem, 0, 0, addr, 32, false);
    uint64_t first_dram_writes = mem.dram().stats().writeBytes;
    EXPECT_GT(first_dram_writes, 0u);
    // Second write to the same line coalesces in the caches.
    write(mem, 0, 1000, addr, 32, false);
    EXPECT_EQ(mem.dram().stats().writeBytes, first_dram_writes);
    // The writing SM reads its own store back from the L1.
    MemIssue rd = read(mem, 0, 2000, addr, 4, false);
    EXPECT_TRUE(rd.l1Hit);
    // Another SM misses its L1 but hits the shared L2.
    MemIssue other = read(mem, 1, 3000, addr, 4, false);
    EXPECT_FALSE(other.l1Hit);
    EXPECT_FALSE(other.reachedDram);
}

TEST(MemSystem, NoWriteAllocateBypassesCaches)
{
    GpuConfig config;
    config.writePolicy = WritePolicy::NoWriteAllocate;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Local, 4096, "local");
    MemSystem mem(config, space);
    write(mem, 0, 0, addr, 32, false);
    uint64_t first_dram_writes = mem.dram().stats().writeBytes;
    EXPECT_GT(first_dram_writes, 0u);
    // The store did not install the line anywhere: a repeated store
    // misses again and pays another DRAM trip.
    write(mem, 0, 1000, addr, 32, false);
    EXPECT_GT(mem.dram().stats().writeBytes, first_dram_writes);
    // And a load from the writing SM must fetch from DRAM.
    MemIssue rd = read(mem, 0, 2000, addr, 4, false);
    EXPECT_FALSE(rd.l1Hit);
    EXPECT_TRUE(rd.reachedDram);
}

TEST(MemSystem, MshrExhaustionSerializes)
{
    GpuConfig config;
    config.l1MshrEntries = 4;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Compute, 1 << 20, "buf");
    MemSystem mem(config, space);

    // N distinct-line misses fill the MSHR file...
    uint64_t first_ready = UINT64_MAX;
    for (uint32_t i = 0; i < 4; i++) {
        MemIssue issue = read(mem, 0, 0, addr + i * 4096ull, 4,
                              false);
        ASSERT_TRUE(issue.accepted) << "miss " << i;
        first_ready = std::min(first_ready, issue.readyCycle);
    }
    // ...and the (N+1)-th distinct-line miss must bounce.
    MemIssue overflow = read(mem, 0, 0, addr + 4 * 4096ull, 4,
                             false);
    EXPECT_FALSE(overflow.accepted);
    EXPECT_EQ(overflow.reject, MemReject::Mshr);
    EXPECT_GE(mem.memStats().mshrFullStalls, 1u);
    // A rejected access left no trace in the requester counters.
    EXPECT_EQ(mem.l1Shader().reads, 4u);
    EXPECT_EQ(mem.l1Shader().misses, 4u);

    // An L1 hit needs no MSHR entry and is admitted even when the
    // file is full.
    MemIssue merge = read(mem, 0, 1, addr, 4, false);
    EXPECT_TRUE(merge.accepted);

    // Once the earliest fill returns and frees its entry, the
    // overflow access serializes in behind it.
    MemIssue retry = read(mem, 0, first_ready, addr + 4 * 4096ull, 4,
                          false);
    EXPECT_TRUE(retry.accepted);
    EXPECT_GT(retry.readyCycle, first_ready);
}

TEST(MemSystem, PortConflictSerializes)
{
    GpuConfig config;
    config.l1PortWidth = 2;
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Compute, 1 << 20, "buf");
    MemSystem mem(config, space);

    EXPECT_TRUE(read(mem, 0, 0, addr, 4, false).accepted);
    EXPECT_TRUE(read(mem, 0, 0, addr + 4096, 4, false).accepted);
    // Third line-segment in the same cycle exceeds the port width.
    MemIssue third = read(mem, 0, 0, addr + 8192, 4, false);
    EXPECT_FALSE(third.accepted);
    EXPECT_EQ(third.reject, MemReject::Port);
    EXPECT_EQ(mem.memStats().portRejects, 1u);
    EXPECT_EQ(mem.memStats().portConflictCycles, 1u);
    // Ports are per SM: another SM issues freely the same cycle.
    EXPECT_TRUE(read(mem, 1, 0, addr + 8192, 4, false).accepted);
    // And the port frees next cycle.
    EXPECT_TRUE(read(mem, 0, 1, addr + 8192, 4, false).accepted);
}

TEST(MemSystem, FillFreeConservation)
{
    GpuConfig config = GpuConfig::table4();
    AddressSpace space;
    uint64_t addr = space.allocate(DataKind::Compute, 4 << 20, "buf");
    MemSystem mem(config, space);

    uint64_t cycle = 0;
    for (int i = 0; i < 200; i++) {
        MemIssue issue = read(mem, i % config.numSms, cycle,
                              addr + static_cast<uint64_t>(i) * 4096,
                              4, false);
        if (issue.accepted)
            cycle += 3;
        else
            cycle += 50; // back off and replay later
    }
    mem.drainAll();
    const MemSystemStats &stats = mem.memStats();
    EXPECT_GT(stats.mshrAllocs, 0u);
    EXPECT_EQ(stats.mshrAllocs, stats.mshrFrees);
    EXPECT_EQ(mem.inflight(), 0);
    EXPECT_GT(stats.mshrLivePeak, 0u);
    // The occupancy histogram covered some non-idle time.
    uint64_t busy = 0;
    for (int b = 1; b < memOccupancyBuckets; b++)
        busy += stats.inflightCycles[b];
    EXPECT_GT(busy, 0u);
}

TEST(MemSystem, InfiniteResourcesMatchOracleGolden)
{
    // The clocked request/port model with every resource unlimited
    // must reproduce the pre-refactor latency oracle cycle for
    // cycle. These numbers were captured from the oracle model on
    // the default mobile config at 16x16; any drift here means the
    // characterization figures moved.
    struct Golden
    {
        const char *id;
        uint64_t cycles, instructions;
        uint64_t l1ShaderReads, l1ShaderHits, l1ShaderMisses;
        uint64_t l1RtReads, l1RtHits, l1RtMisses, l1RtPendingHits;
        uint64_t l2RtMisses, dramAccesses;
    };
    const Golden goldens[] = {
        {"BUNNY_AO", 27330, 832, 564, 330, 205, 24204, 19159, 1467,
         3578, 933, 1153},
        {"SPNZA_AO", 19888, 832, 592, 398, 169, 31695, 26190, 1259,
         4246, 673, 877},
        {"WKND_PT", 15994, 3874, 1500, 1395, 79, 9668, 8077, 229,
         1362, 100, 222},
    };
    RunOptions options;
    options.params.width = 16;
    options.params.height = 16;
    const std::vector<Workload> workloads = allWorkloads();
    for (const Golden &golden : goldens) {
        const Workload *workload = nullptr;
        for (const Workload &cand : workloads) {
            if (cand.id() == golden.id)
                workload = &cand;
        }
        ASSERT_NE(workload, nullptr) << golden.id;
        WorkloadResult result = runWorkload(*workload, options);
        EXPECT_EQ(result.stats.cycles, golden.cycles) << golden.id;
        EXPECT_EQ(result.stats.instructions, golden.instructions)
            << golden.id;
        EXPECT_EQ(result.l1Shader.reads, golden.l1ShaderReads)
            << golden.id;
        EXPECT_EQ(result.l1Shader.hits, golden.l1ShaderHits)
            << golden.id;
        EXPECT_EQ(result.l1Shader.misses, golden.l1ShaderMisses)
            << golden.id;
        EXPECT_EQ(result.l1Rt.reads, golden.l1RtReads) << golden.id;
        EXPECT_EQ(result.l1Rt.hits, golden.l1RtHits) << golden.id;
        EXPECT_EQ(result.l1Rt.misses, golden.l1RtMisses)
            << golden.id;
        EXPECT_EQ(result.l1Rt.pendingHits, golden.l1RtPendingHits)
            << golden.id;
        EXPECT_EQ(result.l2Rt.misses, golden.l2RtMisses)
            << golden.id;
        EXPECT_EQ(result.dram.accesses, golden.dramAccesses)
            << golden.id;
    }
}

TEST(MemSystem, FiniteResourcesStallAndSlowDown)
{
    // Under the finite Table 4 memory system a cache-stressing
    // workload must record MSHR stalls, and shrinking the MSHR file
    // can only slow the run down.
    const std::vector<Workload> workloads = allWorkloads();
    const Workload *workload = nullptr;
    for (const Workload &cand : workloads) {
        if (cand.id() == "BUNNY_AO")
            workload = &cand;
    }
    ASSERT_NE(workload, nullptr);
    RunOptions options;
    options.params.width = 16;
    options.params.height = 16;

    options.config = GpuConfig::table4();
    WorkloadResult finite = runWorkload(*workload, options);

    options.config = GpuConfig::table4();
    options.config.l1MshrEntries = 1;
    WorkloadResult strangled = runWorkload(*workload, options);

    RunOptions unlimited_options;
    unlimited_options.params.width = 16;
    unlimited_options.params.height = 16;
    WorkloadResult unlimited = runWorkload(*workload,
                                           unlimited_options);

    EXPECT_GE(finite.stats.cycles, unlimited.stats.cycles);
    EXPECT_GT(strangled.stats.cycles, finite.stats.cycles);
}

TEST(GoldenParity, RtqQueryPins)
{
    // Scheduler parity anchors beyond the render workloads: the
    // RT-cores-as-compute point-containment query workload, pinned
    // under both the unlimited mobile config and the finite Table 4
    // machine (where the MSHR retry path dominates the schedule).
    // Captured from the pre-scheduler polling loop at 16x16; any
    // drift means the event loop no longer lands on the same cycles.
    struct Pin
    {
        GpuConfig config;
        uint64_t cycles;
    };
    const Pin pins[] = {
        {GpuConfig::mobile(), 5175},
        {GpuConfig::table4(), 28628},
    };
    for (const Pin &pin : pins) {
        RunOptions options;
        options.params.width = 16;
        options.params.height = 16;
        options.config = pin.config;
        WorkloadResult r = runWorkload(
            {SceneId::AMR, ShaderKind::PointContainment}, options);
        EXPECT_EQ(r.id, "AMR_PC");
        EXPECT_EQ(r.stats.cycles, pin.cycles) << pin.config.name;
        EXPECT_EQ(r.stats.instructions, 444u) << pin.config.name;
        EXPECT_EQ(r.stats.raysTraced, 256u) << pin.config.name;
        EXPECT_EQ(r.l1Rt.reads, 2749u) << pin.config.name;
        EXPECT_EQ(r.l1Rt.misses, 96u) << pin.config.name;
        EXPECT_EQ(r.dram.accesses, 181u) << pin.config.name;
    }
}

TEST(GoldenParity, DynamicScenePins)
{
    // A two-frame dynamic run (instance transform update + TLAS
    // refit between frames) exercises beginFrame() state reset under
    // the event scheduler; pinned under both configs like the query
    // workload above.
    struct Pin
    {
        GpuConfig config;
        uint64_t frame0;
        uint64_t total;
    };
    const Pin pins[] = {
        {GpuConfig::mobile(), 10340, 15035},
        {GpuConfig::table4(), 123714, 132966},
    };
    for (const Pin &pin : pins) {
        Scene scene = buildScene(SceneId::REF, 0.2f);
        Gpu gpu(pin.config);
        RenderParams params;
        params.width = 16;
        params.height = 16;
        RayTracingPipeline pipeline(gpu, scene, params);
        pipeline.render(ShaderKind::Shadow);
        EXPECT_EQ(gpu.stats().cycles, pin.frame0) << pin.config.name;
        scene.setInstanceTransform(
            3, Mat4::translate({0.1f, 0.0f, 0.0f}) *
                   scene.instances[3].transform);
        pipeline.beginFrame();
        pipeline.render(ShaderKind::Shadow);
        EXPECT_EQ(gpu.stats().cycles, pin.total) << pin.config.name;
        EXPECT_EQ(gpu.stats().instructions, 992u) << pin.config.name;
        EXPECT_EQ(gpu.memSystem().l1Rt().reads, 28646u)
            << pin.config.name;
        EXPECT_EQ(gpu.memSystem().dram().stats().accesses, 337u)
            << pin.config.name;
    }
}

TEST(GoldenParity, LegacyLoopMatchesEventLoop)
{
    // The retained polling loop (LUMI_LEGACY_LOOP=1) and the event
    // scheduler must agree to the cycle. The pins above anchor the
    // event loop to the seed; this anchors the two loops to each
    // other on a finite-resource run, where the due-set computation
    // actually skips components and a registration bug would move
    // the landing cycles.
    RunOptions options;
    options.params.width = 16;
    options.params.height = 16;
    options.config = GpuConfig::table4();
    const Workload workload{SceneId::AMR,
                            ShaderKind::PointContainment};
    WorkloadResult event = runWorkload(workload, options);
    setenv("LUMI_LEGACY_LOOP", "1", 1);
    WorkloadResult legacy = runWorkload(workload, options);
    unsetenv("LUMI_LEGACY_LOOP");
    EXPECT_EQ(legacy.stats.cycles, event.stats.cycles);
    EXPECT_EQ(legacy.stats.instructions, event.stats.instructions);
    EXPECT_EQ(legacy.stats.raysTraced, event.stats.raysTraced);
    EXPECT_EQ(legacy.l1Rt.reads, event.l1Rt.reads);
    EXPECT_EQ(legacy.l1Rt.hits, event.l1Rt.hits);
    EXPECT_EQ(legacy.l1Rt.misses, event.l1Rt.misses);
    EXPECT_EQ(legacy.l1Shader.reads, event.l1Shader.reads);
    EXPECT_EQ(legacy.l2Rt.misses, event.l2Rt.misses);
    EXPECT_EQ(legacy.dram.accesses, event.dram.accesses);
}

} // namespace
} // namespace lumi
