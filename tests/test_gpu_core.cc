/**
 * @file
 * Tests for the SIMT execution layer: WarpContext mask semantics and
 * trace emission, the core scheduler, the RT unit, and whole-GPU
 * kernel runs.
 */

#include <gtest/gtest.h>

#include "bvh/accel.hh"
#include "gpu/gpu.hh"
#include "scene/scene_library.hh"

namespace lumi
{
namespace
{

TEST(WarpContext, FullMaskByDefault)
{
    WarpContext ctx(nullptr, 0);
    EXPECT_EQ(ctx.activeMask(), 0xffffffffu);
    WarpContext tail(nullptr, 1, 5);
    EXPECT_EQ(tail.activeMask(), 0x1fu);
    EXPECT_TRUE(tail.laneActive(4));
    EXPECT_FALSE(tail.laneActive(5));
}

TEST(WarpContext, AluMergesRepeats)
{
    WarpContext ctx(nullptr, 0);
    ctx.alu(3);
    ctx.alu(2);
    WarpProgram program = ctx.take();
    ASSERT_EQ(program.instrs.size(), 1u);
    EXPECT_EQ(program.instrs[0].repeat, 5);
    EXPECT_EQ(program.instrs[0].op, WarpOp::Alu);
}

TEST(WarpContext, BranchSplitsMask)
{
    WarpContext ctx(nullptr, 0);
    ctx.branch([](int lane) { return lane < 8; },
               [&] { ctx.sfu(1); }, [&] { ctx.load(4, [](int lane) {
                   return 0x10000 + lane * 4;
               }); });
    WarpProgram program = ctx.take();
    // predicate alu + sfu(then) + load(else)
    ASSERT_EQ(program.instrs.size(), 3u);
    EXPECT_EQ(program.instrs[1].op, WarpOp::Sfu);
    EXPECT_EQ(program.instrs[1].mask, 0xffu);
    EXPECT_EQ(program.instrs[2].op, WarpOp::MemLoad);
    EXPECT_EQ(program.instrs[2].mask, 0xffffff00u);
    EXPECT_EQ(program.instrs[2].addrs.size(), 24u);
}

TEST(WarpContext, BranchSkipsEmptySides)
{
    WarpContext ctx(nullptr, 0);
    ctx.branch([](int) { return true; }, [&] { ctx.alu(1); },
               [&] { ctx.sfu(99); });
    WarpProgram program = ctx.take();
    for (const WarpInstr &instr : program.instrs)
        EXPECT_NE(instr.op, WarpOp::Sfu);
}

TEST(WarpContext, NestedBranchRestoresMask)
{
    WarpContext ctx(nullptr, 0);
    ctx.branch([](int lane) { return lane < 16; }, [&] {
        ctx.branch([](int lane) { return lane < 4; },
                   [&] { ctx.sfu(1); });
        ctx.sfu(1);
    });
    WarpProgram program = ctx.take();
    // inner sfu has 4 lanes, outer sfu is back to 16 lanes.
    std::vector<uint32_t> sfu_masks;
    for (const WarpInstr &instr : program.instrs) {
        if (instr.op == WarpOp::Sfu)
            sfu_masks.push_back(instr.mask);
    }
    ASSERT_EQ(sfu_masks.size(), 2u);
    EXPECT_EQ(sfu_masks[0], 0xfu);
    EXPECT_EQ(sfu_masks[1], 0xffffu);
}

TEST(WarpContext, LoopWhileDrainsLanes)
{
    WarpContext ctx(nullptr, 0);
    int counters[32];
    for (int lane = 0; lane < 32; lane++)
        counters[lane] = lane % 4; // lanes iterate 0..3 times
    ctx.loopWhile([&](int lane) { return counters[lane] > 0; },
                  [&] {
                      ctx.sfu(1);
                      for (int lane = 0; lane < 32; lane++) {
                          if (ctx.laneActive(lane))
                              counters[lane]--;
                      }
                  });
    WarpProgram program = ctx.take();
    // Three iterations execute (max count 3); masks shrink.
    std::vector<int> lanes;
    for (const WarpInstr &instr : program.instrs) {
        if (instr.op == WarpOp::Sfu)
            lanes.push_back(instr.activeLanes());
    }
    ASSERT_EQ(lanes.size(), 3u);
    EXPECT_EQ(lanes[0], 24); // lanes with count >= 1
    EXPECT_EQ(lanes[1], 16);
    EXPECT_EQ(lanes[2], 8);
    // All lanes restored after the loop.
    EXPECT_EQ(ctx.activeMask(), 0xffffffffu);
}

TEST(WarpContext, StoreRecordsActiveAddresses)
{
    WarpContext ctx(nullptr, 2, 8);
    ctx.store(4, [&](int lane) {
        return 0x20000 + ctx.threadIndex(lane) * 4ull;
    });
    WarpProgram program = ctx.take();
    ASSERT_EQ(program.instrs.size(), 1u);
    EXPECT_EQ(program.instrs[0].addrs.size(), 8u);
    EXPECT_EQ(program.instrs[0].addrs[0], 0x20000 + 64ull * 4);
}

// ------------------------------------------------------------------
// Whole-GPU kernel execution.
// ------------------------------------------------------------------

TEST(Gpu, StraightLineKernelInstructionCount)
{
    Gpu gpu(GpuConfig::mobile());
    KernelLaunch launch;
    launch.name = "alu_only";
    launch.warpCount = 16;
    launch.program = [](WarpContext &ctx) { ctx.alu(10); };
    gpu.run(launch);
    const GpuStats &stats = gpu.stats();
    EXPECT_EQ(stats.instructions, 160u);
    EXPECT_EQ(stats.threadInstructions, 160u * 32u);
    EXPECT_EQ(stats.warpsLaunched, 16u);
    EXPECT_DOUBLE_EQ(stats.simtEfficiency(), 1.0);
    EXPECT_GT(stats.cycles, 0u);
}

TEST(Gpu, MemoryKernelTouchesHierarchy)
{
    Gpu gpu(GpuConfig::mobile());
    uint64_t buf = gpu.addressSpace().allocate(DataKind::Compute,
                                               1 << 20, "buf");
    KernelLaunch launch;
    launch.warpCount = 32;
    launch.program = [buf](WarpContext &ctx) {
        ctx.load(4, [&](int lane) {
            return buf + ctx.threadIndex(lane) * 4096ull;
        });
        ctx.alu(4);
    };
    gpu.run(launch);
    EXPECT_GT(gpu.memSystem().l1Shader().reads, 0u);
    EXPECT_GT(gpu.memSystem().dram().stats().accesses, 0u);
    EXPECT_EQ(gpu.memSystem().l1Rt().reads, 0u);
}

TEST(Gpu, CoalescedLoadsFewerSegments)
{
    auto run = [](bool coalesced) {
        Gpu gpu(GpuConfig::mobile());
        uint64_t buf = gpu.addressSpace().allocate(
            DataKind::Compute, 1 << 22, "buf");
        KernelLaunch launch;
        launch.warpCount = 8;
        launch.program = [&, buf](WarpContext &ctx) {
            ctx.load(4, [&](int lane) {
                uint64_t idx = ctx.threadIndex(lane);
                return coalesced ? buf + idx * 4
                                 : buf + idx * 4096;
            });
        };
        gpu.run(launch);
        return gpu.stats().coalescedSegments;
    };
    uint64_t seg_good = run(true);
    uint64_t seg_bad = run(false);
    EXPECT_LT(seg_good, seg_bad);
    EXPECT_EQ(seg_good, 8u);      // 32 lanes x 4B = 1 line per warp
    EXPECT_EQ(seg_bad, 8u * 32u); // one line per lane
}

TEST(Gpu, MoreWarpsHideMemoryLatency)
{
    auto run_ipc = [](uint32_t warps) {
        Gpu gpu(GpuConfig::mobile());
        uint64_t buf = gpu.addressSpace().allocate(
            DataKind::Compute, 1 << 24, "buf");
        KernelLaunch launch;
        launch.warpCount = warps;
        launch.program = [&, buf](WarpContext &ctx) {
            for (int i = 0; i < 8; i++) {
                // Coalesced but always-missing loads: one unique
                // line per warp per iteration, so the chain is
                // latency-bound, not bandwidth-bound.
                uint64_t line =
                    (static_cast<uint64_t>(ctx.warpId()) * 8 + i) *
                    128;
                ctx.load(4, [&](int lane) {
                    return buf + line + (lane % 32) * 4;
                });
                ctx.alu(4);
            }
        };
        gpu.run(launch);
        return gpu.stats().ipc();
    };
    double ipc_few = run_ipc(8);
    double ipc_many = run_ipc(128);
    EXPECT_GT(ipc_many, ipc_few * 1.3);
}

TEST(Gpu, TraceRayRunsThroughRtUnit)
{
    Scene scene = buildScene(SceneId::REF, 0.3f);
    Gpu gpu(GpuConfig::mobile());
    AccelStructure accel;
    accel.build(scene);
    SceneGpuLayout layout = SceneGpuLayout::create(
        gpu.addressSpace(), accel, 256, 256);

    KernelLaunch launch;
    launch.warpCount = 8;
    launch.layout = &layout;
    launch.program = [&](WarpContext &ctx) {
        HitInfo hits[32];
        ctx.traceRay(
            [&](int lane) {
                int tid = static_cast<int>(ctx.threadIndex(lane));
                return scene.camera.generateRay(tid % 16, tid / 16,
                                                16, 16, 0.5f, 0.5f);
            },
            [](int) { return 1e30f; }, false, RayKind::Primary,
            hits);
        // REF is enclosed: every ray must hit.
        for (int lane = 0; lane < 32; lane++) {
            if (ctx.laneActive(lane)) {
                EXPECT_TRUE(hits[lane].hit);
            }
        }
    };
    gpu.run(launch);

    const GpuStats &stats = gpu.stats();
    EXPECT_EQ(stats.raysTraced, 256u);
    EXPECT_EQ(stats.raysHit, 256u);
    EXPECT_EQ(stats.raysByKind[0], 256u);
    EXPECT_GT(stats.rtWarpCycles, 0u);
    EXPECT_GT(stats.rtNodesTraversed, 0u);
    EXPECT_GT(stats.rtResultWrites, 0u);
    EXPECT_GT(gpu.memSystem().l1Rt().reads, 0u);
    // RT occupancy and efficiency are well-formed fractions.
    EXPECT_GT(stats.rtOccupancy(8), 0.0);
    EXPECT_LE(stats.rtOccupancy(8), 4.0);
    EXPECT_GT(stats.rtEfficiency(), 0.0);
    EXPECT_LE(stats.rtEfficiency(), 1.0);
}

TEST(Gpu, RtUnitQueuesBeyondCapacity)
{
    // More concurrent traceRay warps than RT slots: all must finish.
    Scene scene = buildScene(SceneId::BUNNY, 0.2f);
    Gpu gpu(GpuConfig::mobile());
    AccelStructure accel;
    accel.build(scene);
    SceneGpuLayout layout = SceneGpuLayout::create(
        gpu.addressSpace(), accel, 2048, 2048);
    KernelLaunch launch;
    launch.warpCount = 64; // 8 per SM, RT capacity is 4
    launch.layout = &layout;
    launch.program = [&](WarpContext &ctx) {
        HitInfo hits[32];
        ctx.traceRay(
            [&](int lane) {
                int tid = static_cast<int>(ctx.threadIndex(lane));
                return scene.camera.generateRay(tid % 45, tid / 45,
                                                45, 45, 0.5f, 0.5f);
            },
            [](int) { return 1e30f; }, false, RayKind::Primary,
            hits);
    };
    gpu.run(launch);
    EXPECT_EQ(gpu.stats().raysTraced, 64u * 32u);
}

TEST(Gpu, TimelineMonotone)
{
    Gpu gpu(GpuConfig::mobile(), 100);
    KernelLaunch launch;
    launch.warpCount = 64;
    launch.program = [](WarpContext &ctx) { ctx.alu(50); };
    gpu.run(launch);
    const auto &samples = gpu.timeline().samples();
    ASSERT_GE(samples.size(), 2u);
    for (size_t i = 1; i < samples.size(); i++) {
        EXPECT_GE(samples[i].cycle, samples[i - 1].cycle);
        EXPECT_GE(samples[i].instructions,
                  samples[i - 1].instructions);
    }
}

TEST(Gpu, DeterministicAcrossRuns)
{
    auto run = [] {
        Scene scene = buildScene(SceneId::REF, 0.25f);
        Gpu gpu(GpuConfig::mobile());
        AccelStructure accel;
        accel.build(scene);
        SceneGpuLayout layout = SceneGpuLayout::create(
            gpu.addressSpace(), accel, 256, 256);
        KernelLaunch launch;
        launch.warpCount = 8;
        launch.layout = &layout;
        launch.program = [&](WarpContext &ctx) {
            HitInfo hits[32];
            ctx.traceRay(
                [&](int lane) {
                    int tid =
                        static_cast<int>(ctx.threadIndex(lane));
                    return scene.camera.generateRay(
                        tid % 16, tid / 16, 16, 16, 0.5f, 0.5f);
                },
                [](int) { return 1e30f; }, false, RayKind::Primary,
                hits);
        };
        gpu.run(launch);
        return gpu.stats().cycles;
    };
    EXPECT_EQ(run(), run());
}

TEST(GpuConfig, PresetsDiffer)
{
    GpuConfig mobile = GpuConfig::mobile();
    GpuConfig desktop = GpuConfig::desktop();
    GpuConfig alternate = GpuConfig::alternate();
    EXPECT_GT(desktop.numSms, mobile.numSms);
    EXPECT_GT(desktop.dramChannels, mobile.dramChannels);
    EXPECT_NE(alternate.rtBoxTestLatency, mobile.rtBoxTestLatency);
    EXPECT_NE(alternate.rtMaxWarps, mobile.rtMaxWarps);
    EXPECT_EQ(mobile.numSms, 8);
    EXPECT_EQ(mobile.maxWarpsPerSm, 32);
    EXPECT_EQ(mobile.rtMaxWarps, 4);
}

} // namespace
} // namespace lumi

namespace lumi
{
namespace
{

TEST(Gpu, LrrSchedulerCompletesIdentically)
{
    auto run = [](WarpSchedulerPolicy policy) {
        GpuConfig config;
        config.scheduler = policy;
        Gpu gpu(config);
        uint64_t buf = gpu.addressSpace().allocate(
            DataKind::Compute, 1 << 20, "buf");
        KernelLaunch launch;
        launch.warpCount = 64;
        launch.program = [buf](WarpContext &ctx) {
            for (int i = 0; i < 4; i++) {
                ctx.load(4, [&](int lane) {
                    return buf + ctx.threadIndex(lane) * 64ull +
                           i * 16384ull;
                });
                ctx.alu(6);
            }
        };
        gpu.run(launch);
        return gpu.stats();
    };
    GpuStats gto = run(WarpSchedulerPolicy::Gto);
    GpuStats lrr = run(WarpSchedulerPolicy::Lrr);
    // Same work either way; only the timing may differ.
    EXPECT_EQ(gto.instructions, lrr.instructions);
    EXPECT_EQ(gto.threadInstructions, lrr.threadInstructions);
    EXPECT_GT(lrr.cycles, 0u);
}

TEST(Gpu, LaunchSamplesRecordDeltas)
{
    Gpu gpu(GpuConfig::mobile());
    KernelLaunch launch;
    launch.warpCount = 8;
    launch.program = [](WarpContext &ctx) { ctx.alu(5); };
    gpu.run(launch);
    launch.warpCount = 16;
    gpu.run(launch);
    ASSERT_EQ(gpu.launchSamples().size(), 2u);
    const LaunchSample &first = gpu.launchSamples()[0];
    const LaunchSample &second = gpu.launchSamples()[1];
    EXPECT_EQ(first.warps, 8u);
    EXPECT_EQ(second.warps, 16u);
    EXPECT_EQ(first.instrByOp[0], 40u);
    EXPECT_EQ(second.instrByOp[0], 80u);
    EXPECT_EQ(first.cycles + second.cycles, gpu.stats().cycles);
}

} // namespace
} // namespace lumi
