/**
 * @file
 * Campaign engine tests: the determinism contract (parallel results
 * byte-identical to serial), the result cache (a hit skips
 * simulation), fault tolerance (retry on transient failure, one bad
 * job never aborts the campaign, budget timeouts), and the LUMI_JOBS
 * environment parsing.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "campaign/cache.hh"
#include "campaign/campaign.hh"
#include "campaign/telemetry.hh"
#include "lumibench/runner.hh"
#include "lumibench/workload.hh"
#include "trace/stat_registry.hh"
#include "trace/trace.hh"

using namespace lumi;
using namespace lumi::campaign;

namespace
{

RunOptions
quickOptions()
{
    RunOptions options;
    options.params.width = 16;
    options.params.height = 16;
    options.sceneDetail = 0.15f;
    return options;
}

std::vector<Job>
quickJobs()
{
    RunOptions options = quickOptions();
    return {
        Job::rayTracing({SceneId::REF, ShaderKind::Shadow}, options),
        Job::rayTracing({SceneId::BUNNY,
                         ShaderKind::AmbientOcclusion},
                        options),
        Job::rayTracing({SceneId::WKND, ShaderKind::Shadow},
                        options),
        Job::compute(ComputeKernel::Nn, options),
    };
}

/** Unique fresh temp directory under the system temp root. */
std::string
freshDir(const char *tag)
{
    static std::atomic<int> counter{0};
    std::string path =
        (std::filesystem::temp_directory_path() /
         (std::string("lumi_campaign_") + tag + "_" +
          std::to_string(::getpid()) + "_" +
          std::to_string(counter.fetch_add(1))))
            .string();
    std::filesystem::remove_all(path);
    return path;
}

} // namespace

TEST(Campaign, ParallelMatchesSerial)
{
    std::vector<Job> jobs = quickJobs();

    // The reference: a plain serial loop, no engine.
    std::vector<WorkloadResult> serial;
    for (const Job &job : jobs) {
        serial.push_back(job.kind == Job::Kind::Compute
                             ? runCompute(job.kernel, job.options)
                             : runWorkload(job.workload,
                                           job.options));
    }

    CampaignOptions engine;
    engine.jobs = 4;
    CampaignResult done = runCampaign(jobs, engine);

    ASSERT_EQ(done.outcomes.size(), jobs.size());
    EXPECT_EQ(done.workers, 4);
    EXPECT_TRUE(done.allOk());
    for (size_t i = 0; i < jobs.size(); i++) {
        // Outcomes arrive in job order regardless of completion
        // order, and every stat dump is byte-identical to serial.
        EXPECT_EQ(done.outcomes[i].id, jobs[i].id());
        EXPECT_EQ(done.outcomes[i].status, JobStatus::Ok);
        EXPECT_EQ(done.outcomes[i].attempts, 1);
        EXPECT_EQ(done.outcomes[i].result.statsJson,
                  serial[i].statsJson);
        EXPECT_EQ(done.outcomes[i].result.stats.cycles,
                  serial[i].stats.cycles);
    }
    EXPECT_EQ(done.stats.total, jobs.size());
    EXPECT_EQ(done.stats.ok, jobs.size());
    EXPECT_EQ(done.stats.retries, 0u);
}

TEST(Campaign, CacheHitSkipsSimulation)
{
    std::vector<Job> jobs = quickJobs();
    std::string cache_dir = freshDir("cache");

    std::atomic<int> simulated{0};
    CampaignOptions engine;
    engine.jobs = 2;
    engine.cacheDir = cache_dir;
    engine.runFn = [&](const Job &job, const RunOptions &options) {
        simulated.fetch_add(1);
        return job.kind == Job::Kind::Compute
                   ? runCompute(job.kernel, options)
                   : runWorkload(job.workload, options);
    };

    CampaignResult cold = runCampaign(jobs, engine);
    EXPECT_TRUE(cold.allOk());
    EXPECT_EQ(simulated.load(), static_cast<int>(jobs.size()));
    EXPECT_EQ(cold.stats.cacheWrites, jobs.size());

    CampaignResult warm = runCampaign(jobs, engine);
    // Zero simulate phases executed on the warm run.
    EXPECT_EQ(simulated.load(), static_cast<int>(jobs.size()));
    EXPECT_EQ(warm.stats.cached, jobs.size());
    EXPECT_EQ(warm.stats.ok, 0u);
    ASSERT_EQ(warm.outcomes.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); i++) {
        EXPECT_EQ(warm.outcomes[i].status, JobStatus::Cached);
        EXPECT_TRUE(warm.outcomes[i].fromCache);
        EXPECT_EQ(warm.outcomes[i].attempts, 0);
        // The rehydrated result matches the cold one byte for byte
        // in the stat dump and in the headline counters.
        EXPECT_EQ(warm.outcomes[i].result.statsJson,
                  cold.outcomes[i].result.statsJson);
        EXPECT_EQ(warm.outcomes[i].result.stats.cycles,
                  cold.outcomes[i].result.stats.cycles);
        EXPECT_EQ(warm.outcomes[i].result.stats.raysTraced,
                  cold.outcomes[i].result.stats.raysTraced);
        EXPECT_EQ(warm.outcomes[i].result.dram.accesses,
                  cold.outcomes[i].result.dram.accesses);
    }

    // The aggregates surface through the stat registry.
    StatRegistry registry;
    warm.registerStats(registry);
    EXPECT_EQ(registry.value("campaign.jobs.cached"),
              static_cast<double>(jobs.size()));
    EXPECT_EQ(registry.value("campaign.jobs.ok"), 0.0);

    std::filesystem::remove_all(cache_dir);
}

TEST(Campaign, TransientFailureRetriesThenSucceeds)
{
    std::vector<Job> jobs = quickJobs();
    std::atomic<int> wknd_failures{0};
    CampaignOptions engine;
    engine.jobs = 2;
    engine.retries = 2;
    engine.retryBackoffSeconds = 0.0;
    engine.runFn = [&](const Job &job, const RunOptions &options) {
        if (job.id() == "WKND_SH" &&
            wknd_failures.fetch_add(1) == 0)
            throw std::runtime_error("injected transient fault");
        return job.kind == Job::Kind::Compute
                   ? runCompute(job.kernel, options)
                   : runWorkload(job.workload, options);
    };

    CampaignResult done = runCampaign(jobs, engine);
    EXPECT_TRUE(done.allOk());
    EXPECT_EQ(done.stats.retries, 1u);
    for (const JobOutcome &outcome : done.outcomes) {
        EXPECT_EQ(outcome.status, JobStatus::Ok);
        EXPECT_EQ(outcome.attempts,
                  outcome.id == "WKND_SH" ? 2 : 1);
    }
}

TEST(Campaign, PermanentFailureReportsWithoutAborting)
{
    std::vector<Job> jobs = quickJobs();
    CampaignOptions engine;
    engine.jobs = 2;
    engine.retries = 1;
    engine.retryBackoffSeconds = 0.0;
    engine.runFn = [&](const Job &job, const RunOptions &options) {
        if (job.id() == "BUNNY_AO")
            throw std::runtime_error("injected permanent fault");
        return job.kind == Job::Kind::Compute
                   ? runCompute(job.kernel, options)
                   : runWorkload(job.workload, options);
    };

    CampaignResult done = runCampaign(jobs, engine);
    EXPECT_FALSE(done.allOk());
    EXPECT_EQ(done.stats.failed, 1u);
    EXPECT_EQ(done.stats.ok, jobs.size() - 1);
    for (const JobOutcome &outcome : done.outcomes) {
        if (outcome.id == "BUNNY_AO") {
            EXPECT_EQ(outcome.status, JobStatus::Failed);
            // First attempt plus `retries` re-attempts.
            EXPECT_EQ(outcome.attempts, 2);
            EXPECT_EQ(outcome.error, "injected permanent fault");
        } else {
            EXPECT_EQ(outcome.status, JobStatus::Ok);
        }
    }
}

TEST(Campaign, CycleBudgetCancelsAsTimeout)
{
    std::vector<Job> jobs = {quickJobs()[0]};
    CampaignOptions engine;
    engine.jobs = 1;
    engine.retries = 3; // must NOT be consumed by a timeout
    engine.jobCycleBudget = 50;

    CampaignResult done = runCampaign(jobs, engine);
    ASSERT_EQ(done.outcomes.size(), 1u);
    EXPECT_EQ(done.outcomes[0].status, JobStatus::Timeout);
    EXPECT_EQ(done.outcomes[0].attempts, 1);
    EXPECT_EQ(done.stats.timeout, 1u);
    EXPECT_EQ(done.stats.retries, 0u);
    EXPECT_FALSE(done.allOk());
    EXPECT_FALSE(done.outcomes[0].error.empty());
}

TEST(Campaign, TimeoutIsNeverCached)
{
    std::string cache_dir = freshDir("timeout");
    std::vector<Job> jobs = {quickJobs()[0]};
    CampaignOptions engine;
    engine.jobs = 1;
    engine.jobCycleBudget = 50;
    engine.cacheDir = cache_dir;

    CampaignResult done = runCampaign(jobs, engine);
    EXPECT_EQ(done.outcomes[0].status, JobStatus::Timeout);
    EXPECT_EQ(done.stats.cacheWrites, 0u);
    // The next full-budget campaign must simulate, not hit a stale
    // truncated entry.
    engine.jobCycleBudget = 0;
    CampaignResult full = runCampaign(jobs, engine);
    EXPECT_EQ(full.outcomes[0].status, JobStatus::Ok);
    std::filesystem::remove_all(cache_dir);
}

TEST(Campaign, TracerGetsOneSpanPerJob)
{
    std::vector<Job> jobs = quickJobs();
    Tracer tracer;
    tracer.setMask(traceBit(TraceCategory::Phase));
    CampaignOptions engine;
    engine.jobs = 2;
    engine.tracer = &tracer;

    CampaignResult done = runCampaign(jobs, engine);
    EXPECT_TRUE(done.allOk());
    std::vector<TraceEvent> events =
        tracer.events(TraceCategory::Phase);
    ASSERT_EQ(events.size(), jobs.size());
    for (const TraceEvent &event : events)
        EXPECT_STREQ(event.name, "job_ok");
}

TEST(Campaign, CacheKeyCoversRenderParams)
{
    RunOptions options = quickOptions();
    Job base = Job::rayTracing(
        {SceneId::REF, ShaderKind::Shadow}, options);
    Job spp = base;
    spp.options.params.samplesPerPixel += 1;
    Job detail = base;
    detail.options.sceneDetail += 0.1f;
    Job config = base;
    config.options.config = GpuConfig::desktop();
    EXPECT_NE(cacheKey(base), cacheKey(spp));
    EXPECT_NE(cacheKey(base), cacheKey(detail));
    EXPECT_NE(cacheKey(base), cacheKey(config));
    EXPECT_EQ(cacheKey(base), cacheKey(base));

    // Traced jobs bypass the cache entirely.
    EXPECT_TRUE(cacheable(base));
    Job traced = base;
    traced.options.traceMask = traceAllCategories;
    EXPECT_FALSE(cacheable(traced));
}

TEST(Campaign, ResolveWorkerCount)
{
    EXPECT_EQ(resolveWorkerCount(4, 100), 4);
    EXPECT_EQ(resolveWorkerCount(8, 3), 3);   // never more than jobs
    EXPECT_EQ(resolveWorkerCount(-2, 10), 1); // junk clamps to 1...
    EXPECT_GE(resolveWorkerCount(0, 1000), 1); // 0 = auto
}

TEST(Campaign, FromEnvParsesJobsWithFallback)
{
    ::setenv("LUMI_JOBS", "7", 1);
    EXPECT_EQ(RunOptions::fromEnv().jobs, 7);
    EXPECT_EQ(CampaignOptions::fromEnv().jobs, 7);

    // Malformed values warn and fall back, like LUMI_RES/LUMI_SPP.
    ::setenv("LUMI_JOBS", "banana", 1);
    EXPECT_EQ(RunOptions::fromEnv().jobs, 0);
    EXPECT_EQ(CampaignOptions::fromEnv().jobs, 0);

    ::unsetenv("LUMI_JOBS");
    EXPECT_EQ(RunOptions::fromEnv().jobs, 0);

    ::setenv("LUMI_RETRIES", "3", 1);
    EXPECT_EQ(CampaignOptions::fromEnv().retries, 3);
    ::unsetenv("LUMI_RETRIES");

    ::setenv("LUMI_CACHE_DIR", "/tmp/some_cache", 1);
    EXPECT_EQ(CampaignOptions::fromEnv().cacheDir,
              "/tmp/some_cache");
    ::unsetenv("LUMI_CACHE_DIR");
}

TEST(Campaign, EventLogRecordsLifecycle)
{
    std::vector<Job> jobs = quickJobs();
    std::string dir = freshDir("events");
    std::filesystem::create_directories(dir);
    std::string log_path = dir + "/events.jsonl";

    std::atomic<int> wknd_failures{0};
    CampaignOptions engine;
    engine.jobs = 2;
    engine.retries = 1;
    engine.retryBackoffSeconds = 0.0;
    engine.eventLogPath = log_path;
    engine.runFn = [&](const Job &job, const RunOptions &options) {
        if (job.id() == "WKND_SH" &&
            wknd_failures.fetch_add(1) == 0)
            throw std::runtime_error("injected transient fault");
        return job.kind == Job::Kind::Compute
                   ? runCompute(job.kernel, options)
                   : runWorkload(job.workload, options);
    };
    CampaignResult done = runCampaign(jobs, engine);
    EXPECT_TRUE(done.allOk());

    std::ifstream log(log_path);
    ASSERT_TRUE(log.good());
    std::vector<std::string> lines;
    size_t started = 0, finished = 0, retried = 0;
    for (std::string line; std::getline(log, line);) {
        // Every line is one self-contained JSON event with a
        // timestamp.
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"event\":\""), std::string::npos);
        EXPECT_NE(line.find("\"t\":"), std::string::npos);
        lines.push_back(line);
        if (line.find("\"event\":\"job_started\"") !=
            std::string::npos)
            started++;
        if (line.find("\"event\":\"job_finished\"") !=
            std::string::npos)
            finished++;
        if (line.find("\"event\":\"job_retried\"") !=
            std::string::npos)
            retried++;
    }
    ASSERT_FALSE(lines.empty());
    EXPECT_NE(lines.front().find("\"event\":\"campaign_started\""),
              std::string::npos);
    EXPECT_NE(
        lines.back().find("\"event\":\"campaign_finished\""),
        std::string::npos);
    EXPECT_EQ(started, jobs.size());
    EXPECT_EQ(finished, jobs.size());
    EXPECT_EQ(retried, 1u);
    EXPECT_NE(lines.back().find("\"ok\":4"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Campaign, FromEnvReadsTelemetryKnobs)
{
    ::setenv("LUMI_EVENT_LOG", "/tmp/ev.jsonl", 1);
    ::setenv("LUMI_HEARTBEAT", "2.5", 1);
    CampaignOptions options = CampaignOptions::fromEnv();
    EXPECT_EQ(options.eventLogPath, "/tmp/ev.jsonl");
    EXPECT_DOUBLE_EQ(options.heartbeatSeconds, 2.5);
    ::unsetenv("LUMI_EVENT_LOG");
    ::unsetenv("LUMI_HEARTBEAT");
    CampaignOptions defaults = CampaignOptions::fromEnv();
    EXPECT_TRUE(defaults.eventLogPath.empty());
    EXPECT_DOUBLE_EQ(defaults.heartbeatSeconds, 0.0);
}

TEST(Campaign, HeartbeatStandaloneLifecycle)
{
    // A heartbeat constructed and destroyed without any campaign
    // around it must start and shut down cleanly -- including when
    // the period is far longer than the object's lifetime, so the
    // destructor has to interrupt a ticker that never fired.
    std::atomic<int> ticks{0};
    {
        Heartbeat heartbeat(3600.0, [&] { ticks.fetch_add(1); });
    }
    EXPECT_EQ(ticks.load(), 0);

    // A short period must actually tick.
    {
        Heartbeat heartbeat(0.005, [&] { ticks.fetch_add(1); });
        while (ticks.load() == 0)
            std::this_thread::yield();
    }
    EXPECT_GE(ticks.load(), 1);
}

TEST(Campaign, HeartbeatStopIsIdempotentAndConcurrent)
{
    // stop() is documented as idempotent and callable from several
    // threads at once: the join happens exactly once and every
    // caller returns only after the ticker has exited. A regression
    // here deadlocked the second caller (it joined while holding
    // the mutex the ticker needed to observe the stop flag).
    std::atomic<int> ticks{0};
    Heartbeat heartbeat(0.001, [&] { ticks.fetch_add(1); });
    while (ticks.load() == 0)
        std::this_thread::yield();

    std::vector<std::thread> stoppers;
    for (int i = 0; i < 4; ++i)
        stoppers.emplace_back([&] { heartbeat.stop(); });
    for (std::thread &stopper : stoppers)
        stopper.join();

    int after = ticks.load();
    heartbeat.stop(); // and once more, single-threaded
    EXPECT_EQ(ticks.load(), after);
}

TEST(Campaign, MaybeWriteReportCreatesMissingDir)
{
    std::string dir = freshDir("report") + "/nested/deeper";
    ::setenv("LUMI_REPORT_DIR", dir.c_str(), 1);

    RunOptions options = quickOptions();
    WorkloadResult result =
        runWorkload({SceneId::REF, ShaderKind::Shadow}, options);
    bench::maybeWriteReport(result, options);
    ::unsetenv("LUMI_REPORT_DIR");

    std::string path = dir + "/" + result.id + ".report.json";
    EXPECT_TRUE(std::filesystem::exists(path));
    std::filesystem::remove_all(dir);
}
