/**
 * @file
 * Property/fuzz tests over randomly generated scenes: traversal must
 * agree with brute force for any geometry soup, occlusion queries
 * must be consistent with closest-hit queries, and t_max must act as
 * a monotone filter. These run the same invariants as test_bvh but
 * over adversarial random inputs rather than the curated library.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "bvh/accel.hh"
#include "bvh/traversal.hh"
#include "geometry/shapes.hh"
#include "math/rng.hh"

namespace lumi
{
namespace
{

constexpr float infinity = std::numeric_limits<float>::max();

/** A random scene: meshes, procedural spheres, random instancing. */
Scene
randomScene(uint64_t seed)
{
    Rng rng(seed);
    Scene scene;
    scene.name = "FUZZ";
    Material mat;
    int m = scene.addMaterial(mat);

    int geoms = 2 + static_cast<int>(rng.nextBelow(4));
    for (int g = 0; g < geoms; g++) {
        switch (rng.nextBelow(5)) {
          case 0: {
            TriangleMesh mesh = shapes::uvSphere(
                rng.nextInBox({-3, -3, -3}, {3, 3, 3}),
                rng.nextRange(0.3f, 1.5f),
                4 + static_cast<int>(rng.nextBelow(8)),
                6 + static_cast<int>(rng.nextBelow(10)));
            mesh.materialId = m;
            scene.addGeometry(std::move(mesh));
            break;
          }
          case 1: {
            TriangleMesh mesh = shapes::box(
                rng.nextInBox({-4, -4, -4}, {0, 0, 0}),
                rng.nextInBox({0.1f, 0.1f, 0.1f}, {4, 4, 4}));
            mesh.materialId = m;
            scene.addGeometry(std::move(mesh));
            break;
          }
          case 2: {
            TriangleMesh mesh = shapes::rope(
                rng.nextInBox({-4, -4, -4}, {4, 4, 4}),
                rng.nextInBox({-4, -4, -4}, {4, 4, 4}),
                rng.nextRange(0.02f, 0.2f), 5,
                2 + static_cast<int>(rng.nextBelow(6)));
            if (mesh.triangleCount() == 0) {
                mesh = shapes::box({-1, -1, -1}, {1, 1, 1});
            }
            mesh.materialId = m;
            scene.addGeometry(std::move(mesh));
            break;
          }
          case 3: {
            ProceduralSpheres spheres;
            spheres.materialId = m;
            int count = 1 + static_cast<int>(rng.nextBelow(30));
            for (int s = 0; s < count; s++) {
                spheres.spheres.push_back(
                    Vec4(rng.nextInBox({-4, -4, -4}, {4, 4, 4}),
                         rng.nextRange(0.05f, 0.8f)));
            }
            scene.addGeometry(std::move(spheres));
            break;
          }
          default: {
            ProceduralBoxes boxes;
            boxes.materialId = m;
            int count = 1 + static_cast<int>(rng.nextBelow(24));
            for (int b = 0; b < count; b++) {
                Aabb box;
                box.lo = rng.nextInBox({-4, -4, -4},
                                       {3.5f, 3.5f, 3.5f});
                box.hi = box.lo + rng.nextInBox(
                                      {0.05f, 0.05f, 0.05f},
                                      {1.5f, 1.5f, 1.5f});
                boxes.boxes.push_back(box);
            }
            scene.addGeometry(std::move(boxes));
            break;
          }
        }
    }
    int instances = 1 + static_cast<int>(rng.nextBelow(12));
    for (int i = 0; i < instances; i++) {
        Mat4 xform =
            Mat4::translate(rng.nextInBox({-6, -6, -6}, {6, 6, 6})) *
            Mat4::rotateY(rng.nextRange(0.0f, 6.28f)) *
            Mat4::rotateX(rng.nextRange(-1.0f, 1.0f)) *
            Mat4::scale(Vec3(rng.nextRange(0.4f, 2.0f)));
        scene.addInstance(
            static_cast<int>(rng.nextBelow(geoms)), xform);
    }
    scene.lights.push_back({Light::Type::Point, {0, 10, 0},
                            {1, 1, 1}});
    return scene;
}

/** Reference closest-hit by exhaustive search. */
HitInfo
bruteForce(const Scene &scene, const Ray &ray, float t_max,
           float t_min = 1e-4f)
{
    HitInfo best;
    best.t = t_max;
    for (size_t inst = 0; inst < scene.instances.size(); inst++) {
        const Instance &instance = scene.instances[inst];
        const Geometry &geom =
            scene.geometries[instance.geometryId];
        Vec3 o = instance.invTransform.transformPoint(ray.origin);
        Vec3 d = instance.invTransform.transformVector(ray.dir);
        if (geom.kind == Geometry::Kind::Triangles) {
            for (size_t t = 0; t < geom.mesh.triangleCount(); t++) {
                TriangleHit hit;
                if (geom.mesh.intersect(t, o, d, t_min, best.t,
                                        hit)) {
                    best.hit = true;
                    best.t = hit.t;
                    best.instanceIndex = static_cast<int>(inst);
                }
            }
        } else if (geom.kind == Geometry::Kind::Boxes) {
            for (size_t b = 0; b < geom.boxes.count(); b++) {
                float t;
                if (geom.boxes.intersect(b, o, d, t_min, best.t,
                                         t)) {
                    best.hit = true;
                    best.t = t;
                    best.instanceIndex = static_cast<int>(inst);
                }
            }
        } else {
            for (size_t s = 0; s < geom.spheres.count(); s++) {
                float t;
                if (geom.spheres.intersect(s, o, d, t_min, best.t,
                                           t)) {
                    best.hit = true;
                    best.t = t;
                    best.instanceIndex = static_cast<int>(inst);
                }
            }
        }
    }
    if (!best.hit)
        best.t = 0.0f;
    return best;
}

class RandomSceneFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RandomSceneFuzz, TraversalMatchesBruteForce)
{
    Scene scene = randomScene(GetParam());
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);

    Rng rng(GetParam() * 7919 + 13);
    int hits = 0;
    for (int i = 0; i < 200; i++) {
        Ray ray;
        ray.origin = rng.nextInBox({-12, -12, -12}, {12, 12, 12});
        Vec3 target;
        if (i % 2) {
            // Aim at an actual surface point of a random instance
            // so hits are guaranteed to occur in the sample.
            const Instance &inst = scene.instances[rng.nextBelow(
                static_cast<uint32_t>(scene.instances.size()))];
            const Geometry &geom =
                scene.geometries[inst.geometryId];
            Vec3 local;
            if (geom.kind == Geometry::Kind::Triangles) {
                local = geom.mesh.positions[rng.nextBelow(
                    static_cast<uint32_t>(
                        geom.mesh.positions.size()))];
            } else if (geom.kind == Geometry::Kind::Boxes) {
                local = geom.boxes
                            .boxBounds(rng.nextBelow(
                                static_cast<uint32_t>(
                                    geom.boxes.count())))
                            .center();
            } else {
                const Vec4 &s = geom.spheres.spheres[rng.nextBelow(
                    static_cast<uint32_t>(geom.spheres.count()))];
                local = {s.x, s.y, s.z};
            }
            // Jitter off the exact vertex: a ray through a vertex
            // grazes box planes exactly, where conservative BVH
            // culling and brute force may legitimately differ by a
            // float ulp.
            target = inst.transform.transformPoint(local) +
                     rng.nextInBox({-0.2f, -0.2f, -0.2f},
                                   {0.2f, 0.2f, 0.2f});
        } else {
            // Adversarially random.
            target = rng.nextInBox({-12, -12, -12}, {12, 12, 12});
        }
        ray.dir = normalize(target - ray.origin);
        if (lengthSquared(ray.dir) < 1e-8f)
            continue;
        HitInfo expect = bruteForce(scene, ray, infinity);
        HitInfo got = TraversalStateMachine::traceFunctional(
            accel, ray, false);
        ASSERT_EQ(got.hit, expect.hit) << "seed " << GetParam()
                                       << " ray " << i;
        if (expect.hit) {
            hits++;
            EXPECT_NEAR(got.t, expect.t, 1e-2f)
                << "seed " << GetParam() << " ray " << i;
        }
    }
    EXPECT_GT(hits, 0);
}

TEST_P(RandomSceneFuzz, OcclusionConsistentWithClosest)
{
    Scene scene = randomScene(GetParam());
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);
    Rng rng(GetParam() * 104729 + 5);
    for (int i = 0; i < 100; i++) {
        Ray ray;
        ray.origin = rng.nextInBox({-10, -10, -10}, {10, 10, 10});
        ray.dir = normalize(rng.nextInBox({-1, -1, -1}, {1, 1, 1}));
        if (lengthSquared(ray.dir) < 1e-8f)
            continue;
        HitInfo closest = TraversalStateMachine::traceFunctional(
            accel, ray, false);
        HitInfo any = TraversalStateMachine::traceFunctional(
            accel, ray, true);
        // An occlusion query hits exactly when a closest query does.
        EXPECT_EQ(any.hit, closest.hit) << "seed " << GetParam();
        if (closest.hit) {
            EXPECT_GE(any.t, closest.t - 1e-4f);
        }
    }
}

TEST_P(RandomSceneFuzz, TMaxIsMonotone)
{
    Scene scene = randomScene(GetParam());
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);
    Rng rng(GetParam() * 31 + 77);
    for (int i = 0; i < 60; i++) {
        Ray ray;
        ray.origin = rng.nextInBox({-10, -10, -10}, {10, 10, 10});
        ray.dir = normalize(rng.nextInBox({-1, -1, -1}, {1, 1, 1}));
        if (lengthSquared(ray.dir) < 1e-8f)
            continue;
        HitInfo unlimited = TraversalStateMachine::traceFunctional(
            accel, ray, false);
        if (!unlimited.hit)
            continue;
        // A t_max beyond the hit keeps it; below it loses it.
        HitInfo above = TraversalStateMachine::traceFunctional(
            accel, ray, false, 1e-4f, unlimited.t * 1.5f + 1.0f);
        EXPECT_TRUE(above.hit);
        EXPECT_NEAR(above.t, unlimited.t, 1e-3f);
        HitInfo below = TraversalStateMachine::traceFunctional(
            accel, ray, false, 1e-4f, unlimited.t * 0.5f);
        if (below.hit) {
            EXPECT_LT(below.t, unlimited.t * 0.5f + 1e-4f);
        }
    }
}

TEST_P(RandomSceneFuzz, RefitAgreesWithRebuild)
{
    Scene scene = randomScene(GetParam());
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);

    // Re-pose everything, refit, and compare against a structure
    // built fresh from the new poses.
    Rng rng(GetParam() + 999);
    for (size_t i = 0; i < scene.instances.size(); i++) {
        scene.setInstanceTransform(
            i, Mat4::translate(rng.nextInBox({-2, -2, -2},
                                             {2, 2, 2})) *
                   scene.instances[i].transform);
    }
    accel.refitTlas();
    AccelStructure fresh;
    fresh.build(scene);
    fresh.assignAddresses(0x10000);

    for (int i = 0; i < 80; i++) {
        Ray ray;
        ray.origin = rng.nextInBox({-12, -12, -12}, {12, 12, 12});
        ray.dir = normalize(rng.nextInBox({-1, -1, -1}, {1, 1, 1}));
        if (lengthSquared(ray.dir) < 1e-8f)
            continue;
        HitInfo refit_hit = TraversalStateMachine::traceFunctional(
            accel, ray, false);
        HitInfo fresh_hit = TraversalStateMachine::traceFunctional(
            fresh, ray, false);
        ASSERT_EQ(refit_hit.hit, fresh_hit.hit);
        if (fresh_hit.hit) {
            EXPECT_NEAR(refit_hit.t, fresh_hit.t, 1e-3f);
        }
    }
}

TEST_P(RandomSceneFuzz, DegenerateRaysAreDeterministicAndNaNFree)
{
    Scene scene = randomScene(GetParam());
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);
    Rng rng(GetParam() * 6151 + 3);
    for (int i = 0; i < 120; i++) {
        Vec3 p = rng.nextInBox({-8, -8, -8}, {8, 8, 8});

        // Zero-length ray (tMin == tMax == 0): the RTQ containment
        // probe. Must agree with brute force over the same window
        // and never produce NaN.
        Ray query{p, Vec3(1.0f, 0.0f, 0.0f)};
        HitInfo got = TraversalStateMachine::traceFunctional(
            accel, query, false, 1e-4f, 0.0f);
        HitInfo again = TraversalStateMachine::traceFunctional(
            accel, query, false, 1e-4f, 0.0f);
        ASSERT_FALSE(std::isnan(got.t)) << "seed " << GetParam();
        ASSERT_EQ(got.hit, again.hit);
        ASSERT_EQ(got.t, again.t);
        HitInfo expect = bruteForce(scene, query, 0.0f, 0.0f);
        EXPECT_EQ(got.hit, expect.hit)
            << "seed " << GetParam() << " point " << i;

        // Zero-direction ray: every slab/quadratic degenerates; the
        // traversal must still terminate with a deterministic,
        // NaN-free answer that matches brute force.
        Ray still{p, Vec3(0.0f)};
        HitInfo zero = TraversalStateMachine::traceFunctional(
            accel, still, false);
        HitInfo zero2 = TraversalStateMachine::traceFunctional(
            accel, still, false);
        ASSERT_FALSE(std::isnan(zero.t)) << "seed " << GetParam();
        ASSERT_EQ(zero.hit, zero2.hit);
        ASSERT_EQ(zero.t, zero2.t);
        HitInfo zexpect = bruteForce(scene, still, infinity);
        EXPECT_EQ(zero.hit, zexpect.hit)
            << "seed " << GetParam() << " point " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSceneFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8,
                                           9, 10, 11, 12));

} // namespace
} // namespace lumi
