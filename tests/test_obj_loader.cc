/**
 * @file
 * Tests for the Wavefront OBJ importer: index forms, fan
 * triangulation, relative indices, attribute splitting, error
 * handling, and end-to-end use in a renderable scene.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "bvh/traversal.hh"
#include "geometry/obj_loader.hh"
#include "scene/scene.hh"

namespace lumi
{
namespace
{

TEST(ObjLoader, PositionsOnlyTriangle)
{
    ObjLoadResult result = parseObj("v 0 0 0\n"
                                    "v 1 0 0\n"
                                    "v 0 1 0\n"
                                    "f 1 2 3\n");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.mesh.triangleCount(), 1u);
    EXPECT_EQ(result.mesh.positions.size(), 3u);
    // Normals synthesized when the file has none.
    ASSERT_EQ(result.mesh.normals.size(), 3u);
    EXPECT_NEAR(result.mesh.normals[0].z, 1.0f, 1e-4f);
    // No vt records: uvs stay empty.
    EXPECT_TRUE(result.mesh.uvs.empty());
}

TEST(ObjLoader, QuadIsFanTriangulated)
{
    ObjLoadResult result = parseObj("v 0 0 0\nv 1 0 0\nv 1 1 0\n"
                                    "v 0 1 0\n"
                                    "f 1 2 3 4\n");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.mesh.triangleCount(), 2u);
    // Fan: (1,2,3) and (1,3,4).
    EXPECT_EQ(result.mesh.indices[0], result.mesh.indices[3]);
}

TEST(ObjLoader, FullCornerForm)
{
    ObjLoadResult result = parseObj("v 0 0 0\nv 1 0 0\nv 0 1 0\n"
                                    "vt 0 0\nvt 1 0\nvt 0 1\n"
                                    "vn 0 0 1\n"
                                    "f 1/1/1 2/2/1 3/3/1\n");
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_EQ(result.mesh.uvs.size(), 3u);
    EXPECT_FLOAT_EQ(result.mesh.uvs[1].x, 1.0f);
    EXPECT_FLOAT_EQ(result.mesh.normals[2].z, 1.0f);
}

TEST(ObjLoader, NormalOnlyFormAndComments)
{
    ObjLoadResult result = parseObj("# a comment\n"
                                    "v 0 0 0\nv 1 0 0\nv 0 1 0\n"
                                    "vn 0 1 0\n"
                                    "f 1//1 2//1 3//1  # trailing\n");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_FLOAT_EQ(result.mesh.normals[0].y, 1.0f);
}

TEST(ObjLoader, NegativeRelativeIndices)
{
    ObjLoadResult result = parseObj("v 0 0 0\nv 1 0 0\nv 0 1 0\n"
                                    "f -3 -2 -1\n");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.mesh.triangleCount(), 1u);
    EXPECT_FLOAT_EQ(result.mesh.positions[1].x, 1.0f);
}

TEST(ObjLoader, SharedPositionDifferentNormalsSplit)
{
    // The same position with two normals becomes two vertices.
    ObjLoadResult result = parseObj("v 0 0 0\nv 1 0 0\nv 0 1 0\n"
                                    "vn 0 0 1\nvn 0 0 -1\n"
                                    "f 1//1 2//1 3//1\n"
                                    "f 1//2 2//2 3//2\n");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.mesh.triangleCount(), 2u);
    EXPECT_EQ(result.mesh.positions.size(), 6u);
}

TEST(ObjLoader, SharedCornersAreReused)
{
    ObjLoadResult result = parseObj("v 0 0 0\nv 1 0 0\nv 1 1 0\n"
                                    "v 0 1 0\n"
                                    "f 1 2 3\nf 1 3 4\n");
    ASSERT_TRUE(result.ok) << result.error;
    // Corners 1 and 3 are shared: only 4 emitted vertices.
    EXPECT_EQ(result.mesh.positions.size(), 4u);
}

TEST(ObjLoader, UnsupportedDirectivesAreCounted)
{
    ObjLoadResult result = parseObj("mtllib foo.mtl\n"
                                    "o thing\ng part\ns off\n"
                                    "usemtl bar\n"
                                    "v 0 0 0\nv 1 0 0\nv 0 1 0\n"
                                    "f 1 2 3\n");
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.skippedDirectives, 5);
}

TEST(ObjLoader, Errors)
{
    EXPECT_FALSE(parseObj("").ok);
    EXPECT_FALSE(parseObj("v 0 0 0\n").ok); // no faces
    // Out-of-range index.
    ObjLoadResult bad = parseObj("v 0 0 0\nf 1 2 3\n");
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error.find("out of range"), std::string::npos);
    // Malformed vertex.
    EXPECT_FALSE(parseObj("v 0 0\nf 1 1 1\n").ok);
    // Degenerate face.
    EXPECT_FALSE(parseObj("v 0 0 0\nv 1 0 0\nf 1 2\n").ok);
    // Missing file.
    EXPECT_FALSE(loadObjFile("/nonexistent/mesh.obj").ok);
}

TEST(ObjLoader, LoadFileAndRender)
{
    // Write a small tetrahedron, load it, and trace rays at it
    // through a real acceleration structure.
    std::string path = ::testing::TempDir() + "/tetra.obj";
    {
        std::ofstream out(path);
        out << "v 0 0 0\nv 1 0 0\nv 0 1 0\nv 0 0 1\n"
               "f 1 3 2\nf 1 2 4\nf 1 4 3\nf 2 3 4\n";
    }
    ObjLoadResult result = loadObjFile(path);
    std::remove(path.c_str());
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.mesh.triangleCount(), 4u);

    Scene scene;
    Material material;
    result.mesh.materialId = scene.addMaterial(material);
    scene.addInstance(scene.addGeometry(std::move(result.mesh)),
                      Mat4::identity());
    scene.lights.push_back({Light::Type::Point, {2, 2, 2},
                            {1, 1, 1}});
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);
    Ray ray{{0.2f, 0.2f, 5.0f}, {0.0f, 0.0f, -1.0f}};
    HitInfo hit = TraversalStateMachine::traceFunctional(accel, ray,
                                                         false);
    ASSERT_TRUE(hit.hit);
    EXPECT_GT(hit.t, 3.0f);
    EXPECT_LT(hit.t, 5.0f);
}

} // namespace
} // namespace lumi
