/**
 * @file
 * Tests for the scene library: every generator builds, cameras frame
 * their scene, and each scene exhibits the stress property Table 1
 * selected it for.
 */

#include <gtest/gtest.h>

#include "bvh/accel.hh"
#include "bvh/traversal.hh"
#include "scene/scene_library.hh"

namespace lumi
{
namespace
{

class EveryScene : public ::testing::TestWithParam<SceneId>
{
};

TEST_P(EveryScene, BuildsValid)
{
    Scene scene = buildScene(GetParam(), 0.15f);
    EXPECT_EQ(scene.name, sceneName(GetParam()));
    EXPECT_FALSE(scene.geometries.empty());
    EXPECT_FALSE(scene.instances.empty());
    EXPECT_FALSE(scene.materials.empty());
    EXPECT_FALSE(scene.lights.empty());
    EXPECT_GT(scene.uniquePrimitives(), 0u);
    // Instances reference valid geometry and materials exist for
    // every mesh.
    for (const Instance &inst : scene.instances) {
        ASSERT_GE(inst.geometryId, 0);
        ASSERT_LT(inst.geometryId,
                  static_cast<int>(scene.geometries.size()));
    }
    for (const Geometry &geom : scene.geometries) {
        int mat = geom.kind == Geometry::Kind::Triangles
                      ? geom.mesh.materialId
                      : geom.spheres.materialId;
        ASSERT_GE(mat, 0);
        ASSERT_LT(mat, static_cast<int>(scene.materials.size()));
    }
    for (const Material &mat : scene.materials) {
        if (mat.textureId >= 0) {
            ASSERT_LT(mat.textureId,
                      static_cast<int>(scene.textures.size()));
        }
        if (mat.alphaTextureId >= 0) {
            ASSERT_LT(mat.alphaTextureId,
                      static_cast<int>(scene.textures.size()));
        }
    }
}

TEST_P(EveryScene, CameraSeesGeometry)
{
    Scene scene = buildScene(GetParam(), 0.15f);
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);
    int hits = 0;
    const int edge = 12;
    for (int y = 0; y < edge; y++) {
        for (int x = 0; x < edge; x++) {
            Ray ray = scene.camera.generateRay(x, y, edge, edge, 0.5f,
                                               0.5f);
            HitInfo hit = TraversalStateMachine::traceFunctional(
                accel, ray, false);
            if (hit.hit)
                hits++;
        }
    }
    // The camera must actually frame the scene: at least 30% of
    // primary rays hit something.
    EXPECT_GT(hits, edge * edge * 3 / 10)
        << "camera misses " << scene.name;
}

TEST_P(EveryScene, DeterministicRebuild)
{
    Scene a = buildScene(GetParam(), 0.15f);
    Scene b = buildScene(GetParam(), 0.15f);
    EXPECT_EQ(a.uniquePrimitives(), b.uniquePrimitives());
    EXPECT_EQ(a.instances.size(), b.instances.size());
    EXPECT_EQ(a.lights.size(), b.lights.size());
}

INSTANTIATE_TEST_SUITE_P(
    All, EveryScene,
    ::testing::Values(SceneId::LANDS, SceneId::FRST, SceneId::FOX,
                      SceneId::PARTY, SceneId::SPRNG, SceneId::ROBOT,
                      SceneId::CAR, SceneId::SHIP, SceneId::BATH,
                      SceneId::REF, SceneId::BUNNY, SceneId::SPNZA,
                      SceneId::CRNVL, SceneId::WKND, SceneId::CHSNT,
                      SceneId::PARK, SceneId::DUST2, SceneId::MIRAGE,
                      SceneId::INFERNO),
    [](const ::testing::TestParamInfo<SceneId> &info) {
        return sceneName(info.param);
    });

TEST(SceneLibrary, SixteenLumiScenesAndThreeGameMaps)
{
    EXPECT_EQ(lumiScenes().size(), 16u);
    EXPECT_EQ(gameScenes().size(), 3u);
}

TEST(SceneStress, PartyHasManyInstancesFewUniqueTriangles)
{
    Scene party = buildScene(SceneId::PARTY, 0.5f);
    Scene robot = buildScene(SceneId::ROBOT, 0.5f);
    // PARTY: instance-dominated; ROBOT: unique-geometry-dominated.
    EXPECT_GT(party.instances.size(), 100u);
    EXPECT_GT(robot.uniquePrimitives(), party.uniquePrimitives());
    EXPECT_GT(party.instances.size(), robot.instances.size());
}

TEST(SceneStress, RobotHasLargestWorkingSet)
{
    float d = 0.4f;
    size_t robot = buildScene(SceneId::ROBOT, d).uniquePrimitives();
    EXPECT_GT(robot, buildScene(SceneId::BUNNY, d).uniquePrimitives());
    EXPECT_GT(robot, buildScene(SceneId::REF, d).uniquePrimitives());
    EXPECT_GT(robot, buildScene(SceneId::PARTY, d).uniquePrimitives());
}

TEST(SceneStress, EnclosedFlags)
{
    EXPECT_TRUE(buildScene(SceneId::BATH, 0.2f).enclosed);
    EXPECT_TRUE(buildScene(SceneId::REF, 0.2f).enclosed);
    EXPECT_TRUE(buildScene(SceneId::BUNNY, 0.2f).enclosed);
    EXPECT_TRUE(buildScene(SceneId::SPNZA, 0.2f).enclosed);
    EXPECT_FALSE(buildScene(SceneId::LANDS, 0.2f).enclosed);
    EXPECT_FALSE(buildScene(SceneId::PARK, 0.2f).enclosed);
}

TEST(SceneStress, EnclosedScenesOccludeAllRays)
{
    Scene scene = buildScene(SceneId::REF, 0.3f);
    AccelStructure accel;
    accel.build(scene);
    accel.assignAddresses(0x10000);
    // Every primary ray in an enclosed scene must hit something.
    for (int y = 0; y < 8; y++) {
        for (int x = 0; x < 8; x++) {
            Ray ray = scene.camera.generateRay(x, y, 8, 8, 0.5f,
                                               0.5f);
            HitInfo hit = TraversalStateMachine::traceFunctional(
                accel, ray, false);
            EXPECT_TRUE(hit.hit) << "pixel " << x << "," << y;
        }
    }
}

TEST(SceneStress, ChsntUsesAnyHitOnly)
{
    Scene chsnt = buildScene(SceneId::CHSNT, 0.2f);
    EXPECT_TRUE(chsnt.usesAnyHit());
    // None of the other suite scenes require anyhit.
    for (SceneId id : lumiScenes()) {
        if (id == SceneId::CHSNT)
            continue;
        EXPECT_FALSE(buildScene(id, 0.1f).usesAnyHit())
            << sceneName(id);
    }
}

TEST(SceneStress, WkndIsProcedural)
{
    Scene wknd = buildScene(SceneId::WKND, 0.3f);
    EXPECT_GT(wknd.proceduralGeometryCount(), 0u);
    size_t procedural = 0;
    for (const Geometry &geom : wknd.geometries) {
        if (geom.kind == Geometry::Kind::Procedural)
            procedural += geom.spheres.count();
    }
    EXPECT_GT(procedural, 20u);
    // The only procedural scene in the suite.
    for (SceneId id : lumiScenes()) {
        if (id == SceneId::WKND)
            continue;
        EXPECT_EQ(buildScene(id, 0.1f).proceduralGeometryCount(), 0u)
            << sceneName(id);
    }
}

TEST(SceneStress, ShipAndParkAreLongAndThin)
{
    // Sec. 3.1.2: SHIP (rigging) and PARK (grass) are selected for
    // long/thin primitives whose AABBs are mostly empty space.
    // Measure the fraction of triangles whose area is tiny relative
    // to their bounding box surface.
    auto empty_fraction = [](SceneId id) {
        Scene scene = buildScene(id, 0.25f);
        size_t thin = 0, total = 0;
        for (const Instance &inst : scene.instances) {
            const Geometry &geom =
                scene.geometries[inst.geometryId];
            if (geom.kind != Geometry::Kind::Triangles)
                continue;
            const TriangleMesh &mesh = geom.mesh;
            for (size_t t = 0; t < mesh.triangleCount(); t++) {
                const Vec3 &a = mesh.positions[mesh.indices[t * 3]];
                const Vec3 &b =
                    mesh.positions[mesh.indices[t * 3 + 1]];
                const Vec3 &c =
                    mesh.positions[mesh.indices[t * 3 + 2]];
                float area = 0.5f * length(cross(b - a, c - a));
                float box =
                    mesh.triangleBounds(t).surfaceArea() * 0.5f;
                if (box > 1e-12f && area / box < 0.2f)
                    thin++;
                total++;
            }
        }
        return total > 0 ? static_cast<double>(thin) / total : 0.0;
    };
    double ship = empty_fraction(SceneId::SHIP);
    double park = empty_fraction(SceneId::PARK);
    double bunny = empty_fraction(SceneId::BUNNY);
    EXPECT_GT(ship, bunny * 1.5);
    EXPECT_GT(park, bunny * 2.0);
}

TEST(SceneStress, CrnvlHasManyLights)
{
    Scene crnvl = buildScene(SceneId::CRNVL, 0.5f);
    EXPECT_GE(crnvl.lights.size(), 5u);
}

TEST(SceneStress, BathHasReflectiveMaterial)
{
    Scene bath = buildScene(SceneId::BATH, 0.2f);
    bool reflective = false;
    for (const Material &mat : bath.materials)
        reflective = reflective || mat.reflectivity > 0.5f;
    EXPECT_TRUE(reflective);
}

TEST(SceneStress, DetailScalesPrimitives)
{
    size_t low = buildScene(SceneId::FRST, 0.1f).instancedPrimitives();
    size_t high =
        buildScene(SceneId::FRST, 0.6f).instancedPrimitives();
    EXPECT_GT(high, low * 2);
}

TEST(Scene, BackgroundEnclosedIsBlack)
{
    Scene bath = buildScene(SceneId::BATH, 0.1f);
    Vec3 bg = bath.background({0.0f, 1.0f, 0.0f});
    EXPECT_EQ(bg, Vec3(0.0f));
    Scene lands = buildScene(SceneId::LANDS, 0.1f);
    Vec3 sky = lands.background({0.0f, 1.0f, 0.0f});
    EXPECT_GT(sky.z, 0.0f);
}

TEST(Camera, RaysSpanTheImagePlane)
{
    Camera camera({0, 0, 5}, {0, 0, 0}, {0, 1, 0}, 60.0f);
    Ray center = camera.generateRay(8, 8, 16, 16, 0.0f, 0.0f);
    Ray corner = camera.generateRay(0, 0, 16, 16, 0.0f, 0.0f);
    EXPECT_NEAR(length(center.dir), 1.0f, 1e-5f);
    // Top-left corner ray points up-left relative to center.
    EXPECT_LT(corner.dir.x, center.dir.x);
    EXPECT_GT(corner.dir.y, center.dir.y);
}

} // namespace
} // namespace lumi
